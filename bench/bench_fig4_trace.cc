// Paper Fig. 4 + Fig. 5: reprints the instruction-flow tables of the three
// scheduling strategies on the paper's worked example (8-lane warp) and the
// parallel VLC decoding example. The step counts (26 / 12 / 10 and marking
// rounds = 3) are pinned by unit tests.
#include <cstdio>

#include "cgr/cgr_graph.h"
#include "core/cgr_traversal.h"
#include "core/frontier_filter.h"
#include "core/trace.h"
#include "core/warp_centric.h"
#include "util/bit_stream.h"

namespace gcgt {
namespace {

Graph MakeFig4Graph() {
  EdgeList edges;
  auto add_list = [&](NodeId u, std::vector<NodeId> list) {
    for (NodeId v : list) edges.emplace_back(u, v);
  };
  add_list(0, {10, 11, 12, 13, 20, 30});
  add_list(1, {40});
  add_list(2, {50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 70, 80, 90});
  add_list(3, {15, 25});
  add_list(4, {33});
  add_list(5, {100, 101, 102, 103, 104, 105, 106, 110, 115, 120, 126});
  add_list(6, {44});
  add_list(7, {47});
  return Graph::FromEdges(128, edges);
}

void RunAndPrint(GcgtLevel level, const char* title) {
  Graph g = MakeFig4Graph();
  CgrOptions copt;
  copt.min_interval_len = 4;
  copt.segment_len_bytes = 0;
  auto cgr = CgrGraph::Encode(g, copt);
  GcgtOptions opt;
  opt.level = level;
  opt.lanes = 8;
  CgrTraversalEngine engine(cgr.value(), opt);
  BfsFilter filter(g.num_nodes());
  std::vector<NodeId> frontier = {0, 1, 2, 3, 4, 5, 6, 7};
  for (NodeId u : frontier) filter.SetSource(u);
  std::vector<NodeId> out;
  std::vector<simt::WarpStats> warps;
  StepTrace trace;
  engine.ProcessFrontier(frontier, filter, &out, &warps, &trace);
  std::printf("---- %s: %zu steps ----\n%s\n", title, trace.PaperStepCount(),
              trace.ToTable(8).c_str());
}

}  // namespace
}  // namespace gcgt

int main() {
  using namespace gcgt;
  std::printf("== Fig. 4: instruction flow of the scheduling strategies ==\n");
  RunAndPrint(GcgtLevel::kIntuitive, "(b) Intuitive approach");
  RunAndPrint(GcgtLevel::kTwoPhase, "(c) Two-Phase Traversal");
  RunAndPrint(GcgtLevel::kTaskStealing, "(d) Task Stealing");

  std::printf("== Fig. 5: parallel VLC decoding (gamma codes of 1..5) ==\n");
  BitWriter w;
  for (uint64_t v = 1; v <= 5; ++v) VlcEncode(VlcScheme::kGamma, v, &w);
  w.PutBits(0b10100, 5);
  auto bytes = w.bytes();
  ParallelDecodeResult r = WarpCentricDecodeWindow(bytes.data(), w.num_bits(),
                                                   0, 16, VlcScheme::kGamma, 5);
  std::printf("valid start offsets:");
  for (uint32_t o : r.valid_offsets) std::printf(" %u", o);
  std::printf("\ndecoded values:");
  for (uint64_t v : r.values) std::printf(" %llu", (unsigned long long)v);
  std::printf("\nmarking rounds: %d (<= log2(16) = 4)\n", r.rounds);
  return 0;
}
