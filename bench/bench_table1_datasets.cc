// Paper Table 1: dataset statistics (our scaled synthetic stand-ins).
// Prints |V|, |E|, |E|/|V| for each raw dataset, plus the structural
// signature (max degree, locality, interval coverage) that drives the
// compression and scheduling results.
#include <cstdio>

#include "bench/bench_common.h"
#include "graph/graph_stats.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  bench::JsonReport json(argc, argv);
  std::printf("== Table 1: Statistics of (scaled synthetic) datasets ==\n");
  std::printf("%-10s %10s %12s %8s %9s %9s %8s\n", "Dataset", "|V|", "|E|",
              "|E|/|V|", "maxdeg", "locality", "itv_cov");
  for (const std::string& name : bench::DatasetNames()) {
    const double t0 = bench::NowNs();
    Graph g = bench::BuildRawGraph(name);
    GraphStats s = ComputeGraphStats(g);
    json.Add(name, bench::NowNs() - t0, 0.0,
             {{"nodes", std::to_string(s.num_nodes)},
              {"edges", std::to_string(s.num_edges)}});
    std::printf("%-10s %10u %12llu %8.1f %9llu %9.2f %7.1f%%\n", name.c_str(),
                s.num_nodes, static_cast<unsigned long long>(s.num_edges),
                s.avg_degree, static_cast<unsigned long long>(s.max_degree),
                s.locality_score, 100.0 * s.interval_coverage);
  }
  std::printf(
      "\npaper (full scale): uk-2002 18.5M/298M, uk-2007 105M/3.73B,\n"
      "ljournal 5.3M/79M, twitter 41.6M/1.46B, brain 784K/267M.\n");
  return 0;
}
