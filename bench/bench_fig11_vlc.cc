// Paper Fig. 11 (Appendix D): effect of the VLC encoding scheme
// (gamma, zeta2..zeta5) on BFS time and compression rate.
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  std::printf("== Fig. 11: varying the VLC encoding scheme ==\n\n");
  auto datasets = bench::BuildDatasets();
  std::vector<bench::SweepVariant> variants;
  for (VlcScheme s : {VlcScheme::kGamma, VlcScheme::kZeta2, VlcScheme::kZeta3,
                      VlcScheme::kZeta4, VlcScheme::kZeta5}) {
    CgrOptions o;
    o.scheme = s;
    variants.push_back({VlcSchemeName(s), o});
  }
  bench::JsonReport json(argc, argv);
  bench::RunCgrSweep(datasets, variants, &json);
  return 0;
}
