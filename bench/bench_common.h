// Shared infrastructure for the paper-figure benchmarks: the five scaled
// synthetic datasets standing in for uk-2002 / uk-2007 / ljournal / twitter /
// brain (see DESIGN.md "Substitutions"), the unified preprocessing pipeline
// of §7.2 (virtual-node compression + node reordering), the paper-ratio
// device-memory budget, and table formatting helpers.
#ifndef GCGT_BENCH_BENCH_COMMON_H_
#define GCGT_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "api/gcgt_session.h"
#include "cgr/cgr_graph.h"
#include "graph/graph.h"
#include "reorder/reorder.h"
#include "simt/cost_model.h"
#include "vnc/virtual_node.h"

namespace gcgt::bench {

struct Dataset {
  std::string name;
  /// Raw generated graph (before preprocessing). Only populated when the
  /// dataset was rebuilt — on a preprocessing-cache hit (see BuildDatasets)
  /// it stays empty and only raw_edges is restored.
  Graph raw;
  /// After the unified preprocessing: VNC then reordering (paper §7.2).
  Graph graph;
  /// Edge count of the raw graph (compression rates are charged against the
  /// preprocessed graph the engines actually traverse, like the paper).
  EdgeId raw_edges = 0;
  double vnc_reduction = 1.0;
};

/// Builds all five scaled datasets with the given reordering (Table 2
/// default: LLP). Deterministic.
///
/// The preprocessed graph (VNC + reordering, the expensive part) is cached
/// on disk as binary CSR, keyed by (name, reorder, vnc, format version), in
/// the directory named by $GCGT_BENCH_CACHE (default "gcgt_bench_cache"
/// under the working directory; set GCGT_BENCH_CACHE=off to disable). The
/// pipeline is deterministic, so a cache hit is bit-identical to a rebuild;
/// delete the directory after changing generators or preprocessing.
std::vector<Dataset> BuildDatasets(
    ReorderMethod reorder = ReorderMethod::kLlp,
    bool apply_vnc = true);

/// Builds one dataset by name ("uk-2002", "uk-2007", "ljournal", "twitter",
/// "brain").
Dataset BuildDataset(const std::string& name,
                     ReorderMethod reorder = ReorderMethod::kLlp,
                     bool apply_vnc = true);

/// Raw (unpreprocessed) generator output for Table 1.
Graph BuildRawGraph(const std::string& name);

std::vector<std::string> DatasetNames();

/// Query session over an already-preprocessed dataset graph (BuildDataset
/// has applied VNC + reordering, so the session only encodes): serves
/// GCGT/GPUCSR/Gunrock/CPU queries. `device_budget_bytes` == 0 keeps the
/// DeviceSpec default; `level` selects the GCGT scheduling ladder rung.
Result<GcgtSession> PreparedSession(const Graph& graph,
                                    uint64_t device_budget_bytes = 0,
                                    const CgrOptions& cgr = {},
                                    GcgtLevel level = GcgtLevel::kFull);

/// One BfsQuery per source, ready for GcgtSession::RunBatch.
std::vector<Query> BfsBatch(const std::vector<NodeId>& sources);

/// Simulated device-memory budget: the paper's 12 GB scaled by the ratio
/// 12 GB / (twitter CSR bytes), applied to the scaled twitter dataset, so
/// every engine's footprint keeps the paper's capacity ratios and the OOMs
/// land in the same places (Gunrock on uk-2007 and twitter).
uint64_t DeviceBudgetBytes(const std::vector<Dataset>& datasets);

/// BFS sources used by all figure benches (fixed for reproducibility; the
/// paper averages 100 random sources, we average kNumSources).
inline constexpr int kNumSources = 3;
std::vector<NodeId> BfsSources(const Graph& g, int count = kNumSources);

/// Wall-clock helper: median-of-3 milliseconds of fn().
double WallMs(const std::function<void()>& fn, int repeats = 3);

/// Formats "12.34" or "OOM" style cells right-aligned to width.
std::string Cell(double value, int width, int precision = 2);
std::string Cell(const std::string& s, int width);

/// Result of a simulated-GPU run averaged over sources.
struct TimedResult {
  double ms = 0.0;
  bool oom = false;
};

/// Compression rate against the RAW edge count: (raw_edges * 32) / bits of
/// the representation (the paper's "32 / bits per edge" with the unified
/// preprocessing counted as compression).
double RateVsRaw(EdgeId raw_edges, uint64_t representation_bits);

/// Simulator model milliseconds -> modeled device cycles (CyclesToMs
/// inverse), the unit bench JSON artifacts record for trend checking.
double ModelCycles(double model_ms, const simt::CostModel& cost);

/// Monotonic host clock in ns, for JsonReport wall_ns fields.
double NowNs();

/// One point of a CGR-parameter sweep (Figs. 11, 12, 14).
struct SweepVariant {
  std::string label;
  CgrOptions options;
};

class JsonReport;

/// Encodes every dataset with every variant, runs full-GCGT BFS, and prints
/// "dataset  variant  bfs_ms  rate" rows. When `json` is non-null, each
/// (dataset, variant) point additionally becomes one JSON row
/// ("dataset/variant", wall ns of the simulated runs, total modeled cycles,
/// compression rate).
void RunCgrSweep(const std::vector<Dataset>& datasets,
                 const std::vector<SweepVariant>& variants,
                 JsonReport* json = nullptr);

/// Machine-readable benchmark output. A bench main constructs one from its
/// argv; when `--json <path>` (or `--json=<path>`) was passed, every Add()
/// becomes one object in a JSON array written to <path> on destruction:
///   {"scenario": "...", "wall_ns": ..., "model_cycles": ..., <extra>...}
/// wall_ns is measured host time for the scenario; model_cycles is the
/// simulator's cycle count (0 for CPU baselines). Extra fields are emitted
/// as strings. This gives future PRs a stable artifact to track the perf
/// trajectory (e.g. BENCH_fig8.json).
class JsonReport {
 public:
  JsonReport(int argc, char** argv);
  ~JsonReport();

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& scenario, double wall_ns, double model_cycles,
           const std::vector<std::pair<std::string, std::string>>& extra = {});

  /// Writes the file now (also called by the destructor once).
  void Write();

 private:
  std::string path_;
  std::vector<std::string> rows_;
  bool written_ = false;
};

}  // namespace gcgt::bench

#endif  // GCGT_BENCH_BENCH_COMMON_H_
