// Paper Fig. 8: BFS elapsed time and compression rate of six approaches on
// the five datasets, after the unified preprocessing (VNC + LLP, Table 2
// parameters). CPU baselines report measured wall-clock on this host; GPU
// engines report simulator model time (see DESIGN.md); the comparison of
// interest is the *shape*: GPU >> CPU, GCGT within a small factor of GPUCSR,
// Gunrock OOM on the two large datasets, CGR rates 2x-18x.
#include <cstdio>

#include "baseline/byte_rle.h"
#include "baseline/cpu_bfs.h"
#include "baseline/csr_gpu_engine.h"
#include "bench/bench_common.h"
#include "cgr/cgr_graph.h"
#include "core/bfs.h"

int main() {
  using namespace gcgt;
  using bench::Cell;

  std::printf("== Fig. 8: BFS elapsed time + compression rate ==\n");
  std::printf(
      "Table 2 parameters: zeta3, min interval 4, LLP reordering, 32-byte "
      "residual segments.\nCPU rows: measured wall ms (2 threads). GPU rows: "
      "simulator model ms.\n\n");

  auto datasets = bench::BuildDatasets();
  uint64_t budget = bench::DeviceBudgetBytes(datasets);
  std::printf("device memory budget (scaled 12GB): %.1f MB\n\n",
              budget / 1048576.0);

  std::printf("%-10s %-12s %12s %12s\n", "dataset", "approach", "bfs_ms",
              "compr_rate");
  for (const auto& d : datasets) {
    const Graph& g = d.graph;
    auto sources = bench::BfsSources(g);
    ThreadPool pool(2);
    Graph rev = g.Reversed();
    ByteRleGraph rle = ByteRleGraph::Encode(g);
    ByteRleGraph rle_rev = ByteRleGraph::Encode(rev);
    auto cgr = CgrGraph::Encode(g, CgrOptions{});
    if (!cgr.ok()) {
      std::printf("%-10s CGR encode failed: %s\n", d.name.c_str(),
                  cgr.status().ToString().c_str());
      continue;
    }

    double csr_rate = bench::RateVsRaw(d.raw_edges, 32ull * g.num_edges());
    double rle_rate = bench::RateVsRaw(d.raw_edges, 8ull * rle.DataBytes());
    double cgr_rate = bench::RateVsRaw(d.raw_edges, cgr.value().total_bits());

    // CPU approaches (wall clock, median of 3).
    double naive_ms = bench::WallMs([&] {
      for (NodeId s : sources) SerialBfs(g, s);
    }) / sources.size();
    double ligra_ms = bench::WallMs([&] {
      for (NodeId s : sources) LigraBfs(g, rev, s, pool);
    }) / sources.size();
    double ligrap_ms = bench::WallMs([&] {
      for (NodeId s : sources) LigraPlusBfs(rle, rle_rev, s, pool);
    }) / sources.size();

    // GPU approaches (simulator model time, averaged over sources).
    auto run_csr = [&](bool gunrock) -> bench::TimedResult {
      CsrEngineOptions opt;
      opt.gunrock = gunrock;
      opt.device.memory_bytes = budget;
      bench::TimedResult r;
      for (NodeId s : sources) {
        auto res = CsrBfs(g, s, opt);
        if (!res.ok()) {
          r.oom = res.status().IsOutOfMemory();
          return r;
        }
        r.ms += res.value().metrics.model_ms;
      }
      r.ms /= sources.size();
      return r;
    };
    bench::TimedResult gunrock = run_csr(true);
    bench::TimedResult gpucsr = run_csr(false);
    bench::TimedResult gcgt;
    {
      GcgtOptions opt;
      opt.device.memory_bytes = budget;
      for (NodeId s : sources) {
        auto res = GcgtBfs(cgr.value(), s, opt);
        if (!res.ok()) {
          gcgt.oom = res.status().IsOutOfMemory();
          break;
        }
        gcgt.ms += res.value().metrics.model_ms;
      }
      if (!gcgt.oom) gcgt.ms /= sources.size();
    }

    auto row = [&](const char* name, double ms, bool oom, double rate) {
      std::printf("%-10s %-12s %12s %12s\n", d.name.c_str(), name,
                  oom ? Cell("OOM", 12).c_str() : Cell(ms, 12, 3).c_str(),
                  Cell(rate, 12, 2).c_str());
    };
    row("Naive", naive_ms, false, csr_rate);
    row("Ligra", ligra_ms, false, csr_rate);
    row("Ligra+", ligrap_ms, false, rle_rate);
    row("Gunrock", gunrock.ms, gunrock.oom, csr_rate);
    row("GPUCSR", gpucsr.ms, gpucsr.oom, csr_rate);
    row("GCGT", gcgt.ms, gcgt.oom, cgr_rate);
    if (!gcgt.oom && !gpucsr.oom) {
      std::printf("%-10s   GCGT/GPUCSR latency ratio: %.2fx at %.2fx the "
                  "compression\n",
                  "", gcgt.ms / gpucsr.ms, cgr_rate / csr_rate);
    }
    std::printf("\n");
  }
  return 0;
}
