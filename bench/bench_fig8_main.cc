// Paper Fig. 8: BFS elapsed time and compression rate of six approaches on
// the five datasets, after the unified preprocessing (VNC + LLP, Table 2
// parameters). CPU baselines report measured wall-clock on this host; GPU
// engines report simulator model time (see DESIGN.md); the comparison of
// interest is the *shape*: GPU >> CPU, GCGT within a small factor of GPUCSR,
// Gunrock OOM on the two large datasets, CGR rates 2x-18x.
//
// Each dataset is prepared ONCE into a GcgtSession; the three simulated-GPU
// approaches are the session's backends (kCgrSimt / kCsrBaseline /
// kCsrGunrock) answering the same BFS batch.
//
// `--json out.json` additionally records one row per (dataset, approach)
// with measured wall ns and modeled GPU cycles (see bench::JsonReport).
#include <cstdio>

#include "baseline/byte_rle.h"
#include "baseline/cpu_bfs.h"
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  using bench::Cell;
  using bench::NowNs;

  bench::JsonReport json(argc, argv);

  std::printf("== Fig. 8: BFS elapsed time + compression rate ==\n");
  std::printf(
      "Table 2 parameters: zeta3, min interval 4, LLP reordering, 32-byte "
      "residual segments.\nCPU rows: measured wall ms (2 threads). GPU rows: "
      "simulator model ms.\n\n");

  auto datasets = bench::BuildDatasets();
  uint64_t budget = bench::DeviceBudgetBytes(datasets);
  std::printf("device memory budget (scaled 12GB): %.1f MB\n\n",
              budget / 1048576.0);

  std::printf("%-10s %-12s %12s %12s\n", "dataset", "approach", "bfs_ms",
              "compr_rate");
  for (const auto& d : datasets) {
    const Graph& g = d.graph;
    auto sources = bench::BfsSources(g);
    auto batch = bench::BfsBatch(sources);
    ThreadPool pool(2);

    auto prepared = bench::PreparedSession(g, budget);
    if (!prepared.ok()) {
      std::printf("%-10s session prepare failed: %s\n", d.name.c_str(),
                  prepared.status().ToString().c_str());
      continue;
    }
    GcgtSession& session = prepared.value();
    const Graph& rev = session.reversed();
    ByteRleGraph rle = ByteRleGraph::Encode(g);
    ByteRleGraph rle_rev = ByteRleGraph::Encode(rev);

    double csr_rate = bench::RateVsRaw(d.raw_edges, 32ull * g.num_edges());
    double rle_rate = bench::RateVsRaw(d.raw_edges, 8ull * rle.DataBytes());
    double cgr_rate =
        bench::RateVsRaw(d.raw_edges, session.cgr().total_bits());

    // CPU approaches (wall clock, median of 3).
    double naive_ms = bench::WallMs([&] {
      for (NodeId s : sources) SerialBfs(g, s);
    }) / sources.size();
    double ligra_ms = bench::WallMs([&] {
      for (NodeId s : sources) LigraBfs(g, rev, s, pool);
    }) / sources.size();
    double ligrap_ms = bench::WallMs([&] {
      for (NodeId s : sources) LigraPlusBfs(rle, rle_rev, s, pool);
    }) / sources.size();

    // GPU approaches: the same query batch routed through each backend
    // (simulator model time averaged over sources; wall time of the
    // simulation itself recorded for the JSON perf trajectory).
    auto run_backend = [&](Backend backend,
                           double* wall_ns) -> bench::TimedResult {
      bench::TimedResult r;
      const double t0 = NowNs();
      auto results = session.RunBatch(batch, {.backend = backend});
      *wall_ns = NowNs() - t0;
      if (!results.ok()) {
        r.oom = results.status().IsOutOfMemory();
        return r;
      }
      for (const QueryResult& q : results.value()) {
        r.ms += q.metrics().model_ms;
      }
      r.ms /= sources.size();
      return r;
    };
    double gunrock_wall_ns = 0, gpucsr_wall_ns = 0, gcgt_wall_ns = 0;
    bench::TimedResult gunrock =
        run_backend(Backend::kCsrGunrock, &gunrock_wall_ns);
    bench::TimedResult gpucsr =
        run_backend(Backend::kCsrBaseline, &gpucsr_wall_ns);
    bench::TimedResult gcgt = run_backend(Backend::kCgrSimt, &gcgt_wall_ns);

    const simt::CostModel cost = session.options().gcgt.cost;
    auto cycles_of = [&](double model_ms) {
      return bench::ModelCycles(model_ms, cost);
    };
    auto row = [&](const char* name, double ms, bool oom, double rate,
                   double wall_ns, double model_cycles) {
      std::printf("%-10s %-12s %12s %12s\n", d.name.c_str(), name,
                  oom ? Cell("OOM", 12).c_str() : Cell(ms, 12, 3).c_str(),
                  Cell(rate, 12, 2).c_str());
      // OOM rows carry no measurement: both metrics are zeroed and the row
      // is marked so check_trend.py skips it explicitly instead of
      // comparing the few microseconds the failed attempt took.
      json.Add(d.name + "/" + name, oom ? 0.0 : wall_ns,
               oom ? 0.0 : model_cycles,
               {{"oom", oom ? "1" : "0"},
                {"compr_rate", Cell(rate, 0, 2)},
                {"bfs_model_ms", oom ? "OOM" : Cell(ms, 0, 3)}});
    };
    // CPU rows: wall_ns is the measured per-source BFS time; no model.
    row("Naive", naive_ms, false, csr_rate, naive_ms * 1e6, 0.0);
    row("Ligra", ligra_ms, false, csr_rate, ligra_ms * 1e6, 0.0);
    row("Ligra+", ligrap_ms, false, rle_rate, ligrap_ms * 1e6, 0.0);
    // GPU rows: wall_ns is the host time spent simulating all sources.
    row("Gunrock", gunrock.ms, gunrock.oom, csr_rate, gunrock_wall_ns,
        cycles_of(gunrock.ms * sources.size()));
    row("GPUCSR", gpucsr.ms, gpucsr.oom, csr_rate, gpucsr_wall_ns,
        cycles_of(gpucsr.ms * sources.size()));
    row("GCGT", gcgt.ms, gcgt.oom, cgr_rate, gcgt_wall_ns,
        cycles_of(gcgt.ms * sources.size()));
    if (!gcgt.oom && !gpucsr.oom) {
      std::printf("%-10s   GCGT/GPUCSR latency ratio: %.2fx at %.2fx the "
                  "compression\n",
                  "", gcgt.ms / gpucsr.ms, cgr_rate / csr_rate);
    }
    std::printf("\n");
  }
  return 0;
}
