// Closed-loop load generator for the GcgtService serving tier.
//
// N client threads each submit queries back-to-back (submit, wait, record
// latency — closed loop, so the bounded queue's backpressure paces them)
// against one registered artifact. Sources are Zipf-skewed, like real
// traffic: a few hot sources dominate, so the cross-query result cache sees
// realistic hit rates. CC queries ride along every kCcEvery queries.
//
// Scenarios sweep the serving configuration over ONE fixed workload:
//   w1/nocache  - 1 worker, cache off (the serial baseline)
//   wN/nocache  - N workers, cache off (pure worker-pool scaling)
//   wN/cache    - N workers, cache on  (scaling + memoization)
//
// A second, OPEN-loop stage drives the overload-control subsystem: a
// deterministic bursty arrival trace (exponential inter-arrivals alternating
// a sub-capacity base rate with 3x-capacity Poisson bursts, mixed priority
// classes with per-class deadlines, several client ids) is dispatched at
// trace time regardless of completions, once against the legacy FIFO front
// end (overload/fifo) and once against the QoS stack — EDF + CoDel shedding
// + hedging (overload/qos). Rates and deadlines are calibrated to the
// machine's measured mean service time, so the trace stresses the QUEUE, not
// the host's absolute speed. Goodput and the interactive class's p99 are the
// trend-gated metrics; model_cycles is 0 for these rows (the scenarios
// complete different query subsets by design, so summed cycles would not be
// comparable).
//
// The per-query model cycles are deterministic and identical across
// scenarios (cache hits return the memoized metrics of an identical fresh
// run), so the summed model_cycles is a machine-independent trend metric;
// qps / p50 / p99 are the wall-clock serving metrics (trend-gated with the
// higher-is-better direction and a generous threshold).
//
//   $ ./bench_service_throughput [--dataset ljournal] [--queries 240]
//       [--clients 8] [--workers 4] [--json BENCH_service.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/gcgt_session.h"
#include "bench/bench_common.h"
#include "service/gcgt_service.h"
#include "util/random.h"

namespace gcgt::bench {
namespace {

constexpr int kSourcePoolSize = 64;
constexpr double kZipfAlpha = 1.2;
constexpr int kCcEvery = 20;  // every 20th query is a CC

struct Scenario {
  std::string label;
  int workers;
  bool cache;
  /// Backend every query requests (the fallback scenario asks for the
  /// Gunrock-modeled backend under a budget it cannot fit).
  Backend backend = Backend::kCgrSimt;
  /// Tight modeled device budget + CPU fallback: every query OOMs on the
  /// requested backend and is re-served degraded.
  bool oom_fallback = false;
};

struct LoadResult {
  double wall_ns = 0;
  double model_cycles = 0;
  std::vector<double> latency_ms;  // sorted on return
  ServiceStats stats;
  int errors = 0;
};

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// One fixed workload, identical across scenarios: Zipf-ranked BFS sources
/// from a pool of nodes with outgoing edges, a CC every kCcEvery queries.
std::vector<Query> BuildWorkload(const Graph& g, int num_queries) {
  Rng rng(20260727);
  std::vector<NodeId> pool;
  pool.reserve(kSourcePoolSize);
  while (pool.size() < kSourcePoolSize) {
    NodeId s = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    if (g.out_degree(s) > 0) pool.push_back(s);
  }
  std::vector<Query> workload;
  workload.reserve(num_queries);
  for (int i = 0; i < num_queries; ++i) {
    if (i % kCcEvery == kCcEvery - 1) {
      workload.push_back(CcQuery{});
    } else {
      const uint64_t rank = rng.Zipf(kSourcePoolSize, kZipfAlpha) - 1;
      workload.push_back(BfsQuery{pool[rank]});
    }
  }
  return workload;
}

LoadResult RunScenario(const Graph& g, const PrepareOptions& prep,
                       const Scenario& scenario,
                       const std::vector<Query>& workload, int num_clients) {
  ServiceOptions opt;
  opt.num_workers = scenario.workers;
  opt.queue_capacity = 2 * static_cast<size_t>(num_clients);
  if (!scenario.cache) opt.cache_bytes = 0;
  if (scenario.oom_fallback) {
    opt.enable_oom_fallback = true;
    opt.fallback_backend = Backend::kCpuReference;
  }
  GcgtService service(opt);
  auto id = service.RegisterGraph(g, prep);
  if (!id.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 id.status().ToString().c_str());
    std::exit(1);
  }

  // Contiguous slice per client; closed loop within each client.
  LoadResult out;
  std::vector<std::vector<double>> latencies(num_clients);
  std::vector<std::vector<double>> model_ms(num_clients);
  std::vector<int> errors(num_clients, 0);
  const double t0 = NowNs();
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      const size_t begin = workload.size() * c / num_clients;
      const size_t end = workload.size() * (c + 1) / num_clients;
      for (size_t i = begin; i < end; ++i) {
        const double q0 = NowNs();
        Result<QueryResult> r =
            service.Submit({id.value(), workload[i], scenario.backend}).get();
        const double q1 = NowNs();
        if (!r.ok()) {
          ++errors[c];
          continue;
        }
        latencies[c].push_back((q1 - q0) * 1e-6);
        model_ms[c].push_back(r.value().metrics().model_ms);
      }
    });
  }
  for (auto& t : clients) t.join();
  out.wall_ns = NowNs() - t0;

  const simt::CostModel cost;  // benches run the default cost model
  double total_model_ms = 0;
  for (int c = 0; c < num_clients; ++c) {
    out.errors += errors[c];
    out.latency_ms.insert(out.latency_ms.end(), latencies[c].begin(),
                          latencies[c].end());
    for (double ms : model_ms[c]) total_model_ms += ms;
  }
  out.model_cycles = ModelCycles(total_model_ms, cost);
  std::sort(out.latency_ms.begin(), out.latency_ms.end());
  out.stats = service.Stats();
  return out;
}

// ----------------------------------------------------------- overload stage

/// One entry of the deterministic open-loop arrival trace. Deadlines are
/// relative to submission (0 = none), priorities/clients are part of the
/// trace so FIFO and QoS serve the exact same offered load.
struct OverloadArrival {
  double arrival_s = 0;
  size_t query_index = 0;
  QueryPriority priority = QueryPriority::kBatch;
  uint64_t client = 0;
  double deadline_s = 0;
};

struct ServiceTimeProfile {
  double mean_s = 0;
  double max_s = 0;  // heaviest single query (a CC sweep, in practice)
};

/// Per-query service time on this machine, measured on a fresh serial
/// session. The arrival trace is expressed in multiples of the mean, so the
/// bench stresses queueing policy rather than absolute host speed; the max
/// bounds head-of-line blocking (a deadline must survive every worker being
/// busy with the heaviest query when an interactive arrival lands).
ServiceTimeProfile CalibrateServiceTime(const Graph& g,
                                        const PrepareOptions& prep,
                                        const std::vector<Query>& workload) {
  auto session = GcgtSession::Prepare(g, prep);
  if (!session.ok()) {
    std::fprintf(stderr, "calibration prepare failed: %s\n",
                 session.status().ToString().c_str());
    std::exit(1);
  }
  ServiceTimeProfile profile;
  const size_t n = std::min<size_t>(24, workload.size());
  const double t0 = NowNs();
  for (size_t i = 0; i < n; ++i) {
    const double q0 = NowNs();
    auto r = session.value().Run(workload[i]);
    if (!r.ok()) {
      std::fprintf(stderr, "calibration run failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    profile.max_s = std::max(profile.max_s, (NowNs() - q0) * 1e-9);
  }
  profile.mean_s = (NowNs() - t0) * 1e-9 / static_cast<double>(n);
  return profile;
}

/// Blocks of 32 arrivals alternate a 0.6x-capacity base rate with a
/// 3x-capacity burst; inter-arrivals are exponential (Poisson process) from
/// a fixed seed. ~25% interactive with a tight deadline a burst will break
/// under FIFO, ~45% deadline-less batch, ~30% best-effort with a loose
/// deadline; client ids cycle over four tenants. Heavyweight CC sweeps are
/// never interactive — point lookups are latency-sensitive, full-graph
/// analytics are batch by nature — and the interactive deadline budgets for
/// worst-case head-of-line blocking (every worker mid-CC on arrival).
std::vector<OverloadArrival> BuildOverloadTrace(size_t count,
                                                const ServiceTimeProfile& st,
                                                int workers) {
  Rng rng(20260808);
  const double capacity_qps = static_cast<double>(workers) / st.mean_s;
  const double base_rate = 0.6 * capacity_qps;
  const double burst_rate = 3.0 * capacity_qps;
  const double interactive_deadline_s = 10.0 * st.mean_s + 2.0 * st.max_s;
  std::vector<OverloadArrival> trace;
  trace.reserve(count);
  double t = 0;
  for (size_t i = 0; i < count; ++i) {
    const bool bursting = (i / 32) % 2 == 1;
    const double rate = bursting ? burst_rate : base_rate;
    const double u = std::max(rng.NextDouble(), 1e-12);
    t += -std::log(u) / rate;
    OverloadArrival a;
    a.arrival_s = t;
    a.query_index = i;
    a.client = rng.Uniform(4);
    const bool heavyweight = i % kCcEvery == kCcEvery - 1;
    const double pick = rng.NextDouble();
    if (pick < 0.25 && !heavyweight) {
      a.priority = QueryPriority::kInteractive;
      a.deadline_s = interactive_deadline_s;
    } else if (pick < 0.70 || heavyweight) {
      a.priority = QueryPriority::kBatch;
      a.deadline_s = 0;  // throughput work: no deadline
    } else {
      a.priority = QueryPriority::kBestEffort;
      a.deadline_s = 25.0 * st.mean_s;
    }
    trace.push_back(a);
  }
  return trace;
}

struct OverloadResult {
  double wall_ns = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;  // shed + expired + rejected + deadline-exceeded
  uint64_t interactive_ok = 0;
  uint64_t interactive_total = 0;
  /// Response time of EVERY interactive arrival, failures counted at a
  /// fixed penalty (20x mean service time). The penalty makes the tail
  /// goodput-aware: a discipline that sheds an interactive query scores the
  /// penalty, one that serves it scores its real latency — so survivor bias
  /// cannot make a discipline look fast by failing the slow queries.
  std::vector<double> interactive_response_ms;  // sorted
  ServiceStats stats;
};

OverloadResult RunOverloadScenario(const Graph& g, const PrepareOptions& prep,
                                   const std::vector<Query>& workload,
                                   const std::vector<OverloadArrival>& trace,
                                   bool qos, int workers, double mean_s) {
  ServiceOptions opt;
  opt.num_workers = workers;
  // Deep enough that admission never rejects: every arrival is accepted and
  // the two QUEUEING disciplines alone decide its fate.
  opt.queue_capacity = 1024;
  opt.cache_bytes = 0;  // every admitted query does full work in both modes
  opt.qos.edf = qos;
  if (qos) {
    const auto mean = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(mean_s));
    opt.qos.shed_target = 4 * mean;
    opt.qos.shed_interval = 10 * mean;
    // Hedging targets genuine stragglers only: a long delay plus the
    // service's backlog gate (no hedging while a standing queue exists)
    // keeps duplicated work from eating serving capacity during the bursts
    // themselves.
    opt.qos.enable_hedging = true;
    opt.qos.hedge_delay = 12 * mean;
    opt.qos.watchdog_interval =
        std::max<std::chrono::nanoseconds>(mean, std::chrono::microseconds(200));
  } else {
    // The A/B baseline is the pre-QoS service: global FIFO, no shedding, no
    // hedging, no watchdog.
    opt.qos.watchdog_interval = std::chrono::nanoseconds(0);
  }
  GcgtService service(opt);
  auto id = service.RegisterGraph(g, prep);
  if (!id.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 id.status().ToString().c_str());
    std::exit(1);
  }

  struct Pending {
    std::future<Result<QueryResult>> future;
    size_t index;
    double submit_ns;
  };
  OverloadResult out;
  std::vector<char> query_ok(trace.size(), 0);
  std::vector<double> latency_ms(trace.size(), -1);
  std::mutex mu;
  std::vector<Pending> pending;
  std::atomic<bool> dispatched{false};

  // The collector polls outstanding futures so each completion gets a
  // timestamp close to its fulfillment (the dispatcher cannot block on
  // .get(): the loop must stay open under overload).
  std::thread collector([&] {
    for (;;) {
      // Read the flag BEFORE scanning: if dispatch had finished by then,
      // every push happened-before the scan, so an empty scan really means
      // drained (no submission can slip in after the last poll).
      const bool was_dispatched = dispatched.load(std::memory_order_acquire);
      bool drained;
      {
        std::lock_guard<std::mutex> lock(mu);
        for (size_t i = 0; i < pending.size();) {
          Pending& p = pending[i];
          if (p.future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
            const double done_ns = NowNs();
            Result<QueryResult> r = p.future.get();
            query_ok[p.index] = r.ok() ? 1 : 0;
            latency_ms[p.index] = (done_ns - p.submit_ns) * 1e-6;
            pending[i] = std::move(pending.back());
            pending.pop_back();
          } else {
            ++i;
          }
        }
        drained = pending.empty();
      }
      if (drained && was_dispatched) return;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  const double t0 = NowNs();
  for (const OverloadArrival& a : trace) {
    // Open loop: wait for the trace time, then submit no matter how far
    // behind the service is.
    const double target_ns = t0 + a.arrival_s * 1e9;
    const double now_ns = NowNs();
    if (target_ns > now_ns) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          static_cast<int64_t>(target_ns - now_ns)));
    }
    ServiceQuery q{id.value(), workload[a.query_index % workload.size()]};
    q.priority = a.priority;
    q.client_id = a.client;
    if (a.deadline_s > 0) {
      q.cancel = CancelToken::WithDeadline(
          CancelToken::Clock::now() +
          std::chrono::duration_cast<CancelToken::Clock::duration>(
              std::chrono::duration<double>(a.deadline_s)));
    }
    auto submitted = service.TrySubmit(std::move(q));
    if (!submitted.ok()) continue;  // admission-control shed: a failure row
    std::lock_guard<std::mutex> lock(mu);
    pending.push_back(Pending{std::move(submitted.value()), a.query_index,
                              NowNs()});
  }
  dispatched.store(true, std::memory_order_release);
  collector.join();
  out.wall_ns = NowNs() - t0;
  service.Shutdown();

  const double penalty_ms = 20.0 * mean_s * 1e3;
  for (size_t i = 0; i < trace.size(); ++i) {
    const bool interactive =
        trace[i].priority == QueryPriority::kInteractive;
    if (interactive) ++out.interactive_total;
    if (query_ok[i]) {
      ++out.ok;
      if (interactive) {
        ++out.interactive_ok;
        out.interactive_response_ms.push_back(latency_ms[i]);
      }
    } else {
      ++out.failed;
      if (interactive) out.interactive_response_ms.push_back(penalty_ms);
    }
  }
  std::sort(out.interactive_response_ms.begin(),
            out.interactive_response_ms.end());
  out.stats = service.Stats();
  return out;
}

int Main(int argc, char** argv) {
  std::string dataset = "ljournal";
  int num_queries = 240;
  int num_clients = 8;
  int num_workers = 4;
  int overload_queries = 384;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--dataset") == 0) dataset = argv[i + 1];
    if (std::strcmp(argv[i], "--queries") == 0) num_queries = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--clients") == 0) num_clients = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--workers") == 0) num_workers = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--overload-queries") == 0)
      overload_queries = std::atoi(argv[i + 1]);
  }
  JsonReport json(argc, argv);

  // BuildDataset has already applied VNC + LLP reordering; the service
  // session only encodes. Worker engines are serial (num_threads = 1): the
  // serving tier parallelizes across workers, not inside one engine.
  Dataset d = BuildDataset(dataset);
  PrepareOptions prep;
  prep.gcgt.num_threads = 1;
  const std::vector<Query> workload = BuildWorkload(d.graph, num_queries);

  // The degraded scenario serves the same workload on the Gunrock-modeled
  // backend under a device budget its 2.6x memory factor cannot fit: every
  // query OOMs and is re-served on the CPU fallback, marked degraded. Its
  // model_cycles is 0 (the CPU reference carries no simulated-GPU metrics),
  // so the trend gate skips that column and compares qps/p99 only.
  PrepareOptions tight = prep;
  {
    const uint64_t v = d.graph.num_nodes();
    const uint64_t csr_bfs = 4 * (v + 1) + 4 * d.graph.num_edges() + 12 * v;
    tight.gcgt.device.memory_bytes = static_cast<uint64_t>(
        static_cast<double>(csr_bfs) * tight.gunrock_memory_factor * 0.9);
  }

  const Scenario scenarios[] = {
      {"w1/nocache", 1, false},
      {"w" + std::to_string(num_workers) + "/nocache", num_workers, false},
      {"w" + std::to_string(num_workers) + "/cache", num_workers, true},
      {"w" + std::to_string(num_workers) + "/degraded", num_workers, true,
       Backend::kCsrGunrock, /*oom_fallback=*/true},
  };

  std::printf("service throughput: %s, %d queries, %d clients, Zipf(%d, %.1f)\n",
              dataset.c_str(), num_queries, num_clients, kSourcePoolSize,
              kZipfAlpha);
  std::printf("%-12s %10s %10s %10s %10s %10s %10s %12s\n", "scenario",
              "qps", "p50_ms", "p99_ms", "mean_ms", "hit_rate", "degraded",
              "engines");
  for (const Scenario& scenario : scenarios) {
    LoadResult r = RunScenario(d.graph, scenario.oom_fallback ? tight : prep,
                               scenario, workload, num_clients);
    if (r.errors > 0) {
      std::fprintf(stderr, "%d queries failed\n", r.errors);
      return 1;
    }
    const double wall_s = r.wall_ns * 1e-9;
    const double qps = workload.size() / wall_s;
    const double p50 = Quantile(r.latency_ms, 0.5);
    const double p99 = Quantile(r.latency_ms, 0.99);
    double mean = 0;
    for (double ms : r.latency_ms) mean += ms;
    mean /= r.latency_ms.empty() ? 1 : r.latency_ms.size();
    const uint64_t lookups = r.stats.cache.hits + r.stats.cache.misses;
    const double hit_rate =
        lookups ? static_cast<double>(r.stats.cache.hits) / lookups : 0.0;

    std::printf("%-12s %10.1f %10.3f %10.3f %10.3f %10.2f %10llu %12llu\n",
                scenario.label.c_str(), qps, p50, p99, mean, hit_rate,
                static_cast<unsigned long long>(r.stats.degraded),
                static_cast<unsigned long long>(r.stats.worker_sessions));
    json.Add(dataset + "/" + scenario.label, r.wall_ns, r.model_cycles,
             {{"qps", Cell(qps, 0, 2)},
              {"p50_ms", Cell(p50, 0, 4)},
              {"p99_ms", Cell(p99, 0, 4)},
              {"mean_ms", Cell(mean, 0, 4)},
              {"cache_hit_rate", Cell(hit_rate, 0, 3)},
              {"cache_hits", std::to_string(r.stats.cache.hits)},
              {"degraded", std::to_string(r.stats.degraded)},
              {"workers", std::to_string(scenario.workers)},
              {"clients", std::to_string(num_clients)}});
  }

  // -------- open-loop bursty overload: FIFO front end vs the QoS stack ----
  const int overload_workers = std::max(2, num_workers / 2);
  const ServiceTimeProfile service_time =
      CalibrateServiceTime(d.graph, prep, workload);
  const double mean_s = service_time.mean_s;
  const std::vector<OverloadArrival> trace = BuildOverloadTrace(
      static_cast<size_t>(overload_queries), service_time, overload_workers);
  std::printf(
      "\noverload: %d arrivals, %d workers, mean service %.3f ms "
      "(max %.3f ms), burst 3x capacity\n",
      overload_queries, overload_workers, mean_s * 1e3,
      service_time.max_s * 1e3);
  std::printf("%-14s %12s %12s %12s %8s %8s %8s %8s\n", "scenario",
              "goodput_qps", "iact_qps", "iact_p99", "ok", "shed",
              "expired", "hedged");
  for (const bool qos : {false, true}) {
    OverloadResult r = RunOverloadScenario(d.graph, prep, workload, trace,
                                           qos, overload_workers, mean_s);
    const double wall_s = r.wall_ns * 1e-9;
    const double goodput = static_cast<double>(r.ok) / wall_s;
    const double iact_goodput =
        static_cast<double>(r.interactive_ok) / wall_s;
    const double iact_p99 = Quantile(r.interactive_response_ms, 0.99);
    const std::string label = qos ? "overload/qos" : "overload/fifo";
    const uint64_t shed = r.stats.shed_overload + r.stats.shed_rate_limited +
                          r.stats.rejected;
    std::printf("%-14s %12.1f %12.1f %12.3f %8llu %8llu %8llu %8llu\n",
                label.c_str(), goodput, iact_goodput, iact_p99,
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(r.stats.expired_in_queue),
                static_cast<unsigned long long>(r.stats.hedged));
    // model_cycles is 0 by design: the two modes complete different query
    // subsets, so summed deterministic cycles would not be comparable (the
    // model-cycle trend gate skips zero-baseline rows).
    json.Add(dataset + "/" + label, r.wall_ns, 0.0,
             {{"goodput_qps", Cell(goodput, 0, 2)},
              {"interactive_goodput_qps", Cell(iact_goodput, 0, 2)},
              {"interactive_p99_ms", Cell(iact_p99, 0, 4)},
              {"ok", std::to_string(r.ok)},
              {"failed", std::to_string(r.failed)},
              {"interactive_ok", std::to_string(r.interactive_ok)},
              {"interactive_total", std::to_string(r.interactive_total)},
              {"shed_overload", std::to_string(r.stats.shed_overload)},
              {"expired_in_queue", std::to_string(r.stats.expired_in_queue)},
              {"deadline_exceeded", std::to_string(r.stats.deadline_exceeded)},
              {"hedged", std::to_string(r.stats.hedged)},
              {"hedge_wins", std::to_string(r.stats.hedge_wins)},
              {"workers", std::to_string(overload_workers)}});
  }
  return 0;
}

}  // namespace
}  // namespace gcgt::bench

int main(int argc, char** argv) { return gcgt::bench::Main(argc, argv); }
