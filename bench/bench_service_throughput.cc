// Closed-loop load generator for the GcgtService serving tier.
//
// N client threads each submit queries back-to-back (submit, wait, record
// latency — closed loop, so the bounded queue's backpressure paces them)
// against one registered artifact. Sources are Zipf-skewed, like real
// traffic: a few hot sources dominate, so the cross-query result cache sees
// realistic hit rates. CC queries ride along every kCcEvery queries.
//
// Scenarios sweep the serving configuration over ONE fixed workload:
//   w1/nocache  - 1 worker, cache off (the serial baseline)
//   wN/nocache  - N workers, cache off (pure worker-pool scaling)
//   wN/cache    - N workers, cache on  (scaling + memoization)
//
// The per-query model cycles are deterministic and identical across
// scenarios (cache hits return the memoized metrics of an identical fresh
// run), so the summed model_cycles is a machine-independent trend metric;
// qps / p50 / p99 are the wall-clock serving metrics (trend-gated with the
// higher-is-better direction and a generous threshold).
//
//   $ ./bench_service_throughput [--dataset ljournal] [--queries 240]
//       [--clients 8] [--workers 4] [--json BENCH_service.json]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "service/gcgt_service.h"
#include "util/random.h"

namespace gcgt::bench {
namespace {

constexpr int kSourcePoolSize = 64;
constexpr double kZipfAlpha = 1.2;
constexpr int kCcEvery = 20;  // every 20th query is a CC

struct Scenario {
  std::string label;
  int workers;
  bool cache;
  /// Backend every query requests (the fallback scenario asks for the
  /// Gunrock-modeled backend under a budget it cannot fit).
  Backend backend = Backend::kCgrSimt;
  /// Tight modeled device budget + CPU fallback: every query OOMs on the
  /// requested backend and is re-served degraded.
  bool oom_fallback = false;
};

struct LoadResult {
  double wall_ns = 0;
  double model_cycles = 0;
  std::vector<double> latency_ms;  // sorted on return
  ServiceStats stats;
  int errors = 0;
};

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// One fixed workload, identical across scenarios: Zipf-ranked BFS sources
/// from a pool of nodes with outgoing edges, a CC every kCcEvery queries.
std::vector<Query> BuildWorkload(const Graph& g, int num_queries) {
  Rng rng(20260727);
  std::vector<NodeId> pool;
  pool.reserve(kSourcePoolSize);
  while (pool.size() < kSourcePoolSize) {
    NodeId s = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    if (g.out_degree(s) > 0) pool.push_back(s);
  }
  std::vector<Query> workload;
  workload.reserve(num_queries);
  for (int i = 0; i < num_queries; ++i) {
    if (i % kCcEvery == kCcEvery - 1) {
      workload.push_back(CcQuery{});
    } else {
      const uint64_t rank = rng.Zipf(kSourcePoolSize, kZipfAlpha) - 1;
      workload.push_back(BfsQuery{pool[rank]});
    }
  }
  return workload;
}

LoadResult RunScenario(const Graph& g, const PrepareOptions& prep,
                       const Scenario& scenario,
                       const std::vector<Query>& workload, int num_clients) {
  ServiceOptions opt;
  opt.num_workers = scenario.workers;
  opt.queue_capacity = 2 * static_cast<size_t>(num_clients);
  if (!scenario.cache) opt.cache_bytes = 0;
  if (scenario.oom_fallback) {
    opt.enable_oom_fallback = true;
    opt.fallback_backend = Backend::kCpuReference;
  }
  GcgtService service(opt);
  auto id = service.RegisterGraph(g, prep);
  if (!id.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 id.status().ToString().c_str());
    std::exit(1);
  }

  // Contiguous slice per client; closed loop within each client.
  LoadResult out;
  std::vector<std::vector<double>> latencies(num_clients);
  std::vector<std::vector<double>> model_ms(num_clients);
  std::vector<int> errors(num_clients, 0);
  const double t0 = NowNs();
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      const size_t begin = workload.size() * c / num_clients;
      const size_t end = workload.size() * (c + 1) / num_clients;
      for (size_t i = begin; i < end; ++i) {
        const double q0 = NowNs();
        Result<QueryResult> r =
            service.Submit({id.value(), workload[i], scenario.backend}).get();
        const double q1 = NowNs();
        if (!r.ok()) {
          ++errors[c];
          continue;
        }
        latencies[c].push_back((q1 - q0) * 1e-6);
        model_ms[c].push_back(r.value().metrics().model_ms);
      }
    });
  }
  for (auto& t : clients) t.join();
  out.wall_ns = NowNs() - t0;

  const simt::CostModel cost;  // benches run the default cost model
  double total_model_ms = 0;
  for (int c = 0; c < num_clients; ++c) {
    out.errors += errors[c];
    out.latency_ms.insert(out.latency_ms.end(), latencies[c].begin(),
                          latencies[c].end());
    for (double ms : model_ms[c]) total_model_ms += ms;
  }
  out.model_cycles = ModelCycles(total_model_ms, cost);
  std::sort(out.latency_ms.begin(), out.latency_ms.end());
  out.stats = service.Stats();
  return out;
}

int Main(int argc, char** argv) {
  std::string dataset = "ljournal";
  int num_queries = 240;
  int num_clients = 8;
  int num_workers = 4;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--dataset") == 0) dataset = argv[i + 1];
    if (std::strcmp(argv[i], "--queries") == 0) num_queries = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--clients") == 0) num_clients = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--workers") == 0) num_workers = std::atoi(argv[i + 1]);
  }
  JsonReport json(argc, argv);

  // BuildDataset has already applied VNC + LLP reordering; the service
  // session only encodes. Worker engines are serial (num_threads = 1): the
  // serving tier parallelizes across workers, not inside one engine.
  Dataset d = BuildDataset(dataset);
  PrepareOptions prep;
  prep.gcgt.num_threads = 1;
  const std::vector<Query> workload = BuildWorkload(d.graph, num_queries);

  // The degraded scenario serves the same workload on the Gunrock-modeled
  // backend under a device budget its 2.6x memory factor cannot fit: every
  // query OOMs and is re-served on the CPU fallback, marked degraded. Its
  // model_cycles is 0 (the CPU reference carries no simulated-GPU metrics),
  // so the trend gate skips that column and compares qps/p99 only.
  PrepareOptions tight = prep;
  {
    const uint64_t v = d.graph.num_nodes();
    const uint64_t csr_bfs = 4 * (v + 1) + 4 * d.graph.num_edges() + 12 * v;
    tight.gcgt.device.memory_bytes = static_cast<uint64_t>(
        static_cast<double>(csr_bfs) * tight.gunrock_memory_factor * 0.9);
  }

  const Scenario scenarios[] = {
      {"w1/nocache", 1, false},
      {"w" + std::to_string(num_workers) + "/nocache", num_workers, false},
      {"w" + std::to_string(num_workers) + "/cache", num_workers, true},
      {"w" + std::to_string(num_workers) + "/degraded", num_workers, true,
       Backend::kCsrGunrock, /*oom_fallback=*/true},
  };

  std::printf("service throughput: %s, %d queries, %d clients, Zipf(%d, %.1f)\n",
              dataset.c_str(), num_queries, num_clients, kSourcePoolSize,
              kZipfAlpha);
  std::printf("%-12s %10s %10s %10s %10s %10s %10s %12s\n", "scenario",
              "qps", "p50_ms", "p99_ms", "mean_ms", "hit_rate", "degraded",
              "engines");
  for (const Scenario& scenario : scenarios) {
    LoadResult r = RunScenario(d.graph, scenario.oom_fallback ? tight : prep,
                               scenario, workload, num_clients);
    if (r.errors > 0) {
      std::fprintf(stderr, "%d queries failed\n", r.errors);
      return 1;
    }
    const double wall_s = r.wall_ns * 1e-9;
    const double qps = workload.size() / wall_s;
    const double p50 = Quantile(r.latency_ms, 0.5);
    const double p99 = Quantile(r.latency_ms, 0.99);
    double mean = 0;
    for (double ms : r.latency_ms) mean += ms;
    mean /= r.latency_ms.empty() ? 1 : r.latency_ms.size();
    const uint64_t lookups = r.stats.cache.hits + r.stats.cache.misses;
    const double hit_rate =
        lookups ? static_cast<double>(r.stats.cache.hits) / lookups : 0.0;

    std::printf("%-12s %10.1f %10.3f %10.3f %10.3f %10.2f %10llu %12llu\n",
                scenario.label.c_str(), qps, p50, p99, mean, hit_rate,
                static_cast<unsigned long long>(r.stats.degraded),
                static_cast<unsigned long long>(r.stats.worker_sessions));
    json.Add(dataset + "/" + scenario.label, r.wall_ns, r.model_cycles,
             {{"qps", Cell(qps, 0, 2)},
              {"p50_ms", Cell(p50, 0, 4)},
              {"p99_ms", Cell(p99, 0, 4)},
              {"mean_ms", Cell(mean, 0, 4)},
              {"cache_hit_rate", Cell(hit_rate, 0, 3)},
              {"cache_hits", std::to_string(r.stats.cache.hits)},
              {"degraded", std::to_string(r.stats.degraded)},
              {"workers", std::to_string(scenario.workers)},
              {"clients", std::to_string(num_clients)}});
  }
  return 0;
}

}  // namespace
}  // namespace gcgt::bench

int main(int argc, char** argv) { return gcgt::bench::Main(argc, argv); }
