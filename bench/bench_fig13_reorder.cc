// Paper Fig. 13 (Appendix D): effect of the node reordering method
// (Original, DegSort, BFSOrder, Gorder, LLP) on BFS time and compression
// rate. VNC preprocessing is applied once; the reordering varies.
#include <cstdio>

#include "bench/bench_common.h"
#include "cgr/cgr_graph.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  bench::JsonReport json(argc, argv);
  std::printf("== Fig. 13: varying the node reordering method ==\n\n");
  std::printf("%-10s %-10s %12s %12s\n", "dataset", "method", "bfs_ms",
              "compr_rate");
  const ReorderMethod methods[] = {ReorderMethod::kOriginal,
                                   ReorderMethod::kDegSort,
                                   ReorderMethod::kBfsOrder,
                                   ReorderMethod::kGorder, ReorderMethod::kLlp};
  for (const std::string& name : bench::DatasetNames()) {
    for (ReorderMethod m : methods) {
      bench::Dataset d = bench::BuildDataset(name, m);
      auto session = bench::PreparedSession(d.graph);
      if (!session.ok()) continue;
      auto batch = bench::BfsBatch(bench::BfsSources(d.graph));
      const simt::CostModel cost;
      double total = 0;
      int runs = 0;
      const double t0 = bench::NowNs();
      auto results = session.value().RunBatch(batch);
      if (results.ok()) {
        for (const QueryResult& r : results.value()) {
          total += r.metrics().model_ms;
          ++runs;
        }
      }
      json.Add(name + "/" + ReorderMethodName(m), bench::NowNs() - t0,
               bench::ModelCycles(total, cost));
      std::printf(
          "%-10s %-10s %12s %12s\n", name.c_str(), ReorderMethodName(m),
          bench::Cell(runs ? total / runs : 0.0, 12, 3).c_str(),
          bench::Cell(bench::RateVsRaw(
                          d.raw_edges, session.value().cgr().total_bits()),
                      12, 2)
              .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
