// Google-benchmark microbenchmarks: VLC encode/decode throughput per scheme,
// CGR whole-graph encode, adjacency decode, and warp-centric window decode.
#include <benchmark/benchmark.h>

#include "cgr/cgr_decoder.h"
#include "cgr/cgr_graph.h"
#include "cgr/vlc.h"
#include "core/warp_centric.h"
#include "graph/generators.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace gcgt {
namespace {

void BM_VlcEncode(benchmark::State& state) {
  VlcScheme scheme = static_cast<VlcScheme>(state.range(0));
  Rng rng(1);
  std::vector<uint64_t> values;
  for (int i = 0; i < 4096; ++i) values.push_back(1 + rng.Uniform(1 << 20));
  for (auto _ : state) {
    BitWriter w;
    for (uint64_t v : values) VlcEncode(scheme, v, &w);
    benchmark::DoNotOptimize(w.num_bits());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VlcEncode)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_VlcDecode(benchmark::State& state) {
  VlcScheme scheme = static_cast<VlcScheme>(state.range(0));
  Rng rng(2);
  BitWriter w;
  const int kCount = 4096;
  for (int i = 0; i < kCount; ++i) {
    VlcEncode(scheme, 1 + rng.Uniform(1 << 20), &w);
  }
  auto bytes = w.bytes();
  for (auto _ : state) {
    BitReader r(bytes.data(), w.num_bits());
    uint64_t sum = 0;
    for (int i = 0; i < kCount; ++i) sum += VlcDecode(scheme, &r);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}
BENCHMARK(BM_VlcDecode)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_CgrEncodeGraph(benchmark::State& state) {
  WebGraphParams p;
  p.num_nodes = 10000;
  Graph g = GenerateWebGraph(p);
  for (auto _ : state) {
    auto cgr = CgrGraph::Encode(g, CgrOptions{});
    benchmark::DoNotOptimize(cgr.value().total_bits());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CgrEncodeGraph)->Unit(benchmark::kMillisecond);

void BM_CgrDecodeAdjacency(benchmark::State& state) {
  WebGraphParams p;
  p.num_nodes = 10000;
  Graph g = GenerateWebGraph(p);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  for (auto _ : state) {
    uint64_t total = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      total += DecodeAdjacency(cgr.value(), u).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CgrDecodeAdjacency)->Unit(benchmark::kMillisecond);

void BM_WarpCentricWindow(benchmark::State& state) {
  Rng rng(3);
  BitWriter w;
  const int kCount = 8192;
  for (int i = 0; i < kCount; ++i) {
    VlcEncode(VlcScheme::kZeta3, 1 + rng.Uniform(64), &w);
  }
  auto bytes = w.bytes();
  for (auto _ : state) {
    uint64_t pos = 0;
    int decoded = 0;
    while (decoded < kCount) {
      auto r = WarpCentricDecodeWindow(bytes.data(), w.num_bits(), pos, 32,
                                       VlcScheme::kZeta3, kCount - decoded);
      decoded += static_cast<int>(r.values.size());
      pos = r.next_bit_pos;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}
BENCHMARK(BM_WarpCentricWindow)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gcgt

BENCHMARK_MAIN();
