// Google-benchmark microbenchmarks: VLC encode/decode throughput per scheme,
// CGR whole-graph encode, adjacency decode, and warp-centric window decode.
//
// `--json <path>` bypasses the Google Benchmark driver and instead times one
// manual pass of each scenario family, emitting the standard bench JSON rows
// (wall_ns per scenario, model_cycles 0 — these are host codec paths).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "cgr/cgr_decoder.h"
#include "cgr/cgr_graph.h"
#include "cgr/codec.h"
#include "cgr/vlc.h"
#include "core/warp_centric.h"
#include "graph/generators.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace gcgt {
namespace {

void BM_VlcEncode(benchmark::State& state) {
  VlcScheme scheme = static_cast<VlcScheme>(state.range(0));
  Rng rng(1);
  std::vector<uint64_t> values;
  for (int i = 0; i < 4096; ++i) values.push_back(1 + rng.Uniform(1 << 20));
  for (auto _ : state) {
    BitWriter w;
    for (uint64_t v : values) VlcEncode(scheme, v, &w);
    benchmark::DoNotOptimize(w.num_bits());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VlcEncode)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_VlcDecode(benchmark::State& state) {
  VlcScheme scheme = static_cast<VlcScheme>(state.range(0));
  Rng rng(2);
  BitWriter w;
  const int kCount = 4096;
  for (int i = 0; i < kCount; ++i) {
    VlcEncode(scheme, 1 + rng.Uniform(1 << 20), &w);
  }
  auto bytes = w.bytes();
  for (auto _ : state) {
    BitReader r(bytes.data(), w.num_bits());
    uint64_t sum = 0;
    for (int i = 0; i < kCount; ++i) sum += VlcDecode(scheme, &r);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}
BENCHMARK(BM_VlcDecode)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_CgrEncodeGraph(benchmark::State& state) {
  WebGraphParams p;
  p.num_nodes = 10000;
  Graph g = GenerateWebGraph(p);
  for (auto _ : state) {
    auto cgr = CgrGraph::Encode(g, CgrOptions{});
    benchmark::DoNotOptimize(cgr.value().total_bits());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CgrEncodeGraph)->Unit(benchmark::kMillisecond);

void BM_CgrDecodeAdjacency(benchmark::State& state) {
  WebGraphParams p;
  p.num_nodes = 10000;
  Graph g = GenerateWebGraph(p);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  for (auto _ : state) {
    uint64_t total = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      total += DecodeAdjacency(cgr.value(), u).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CgrDecodeAdjacency)->Unit(benchmark::kMillisecond);

void BM_ByteCodecEncodeGraph(benchmark::State& state) {
  CodecId codec = static_cast<CodecId>(state.range(0));
  WebGraphParams p;
  p.num_nodes = 10000;
  Graph g = GenerateWebGraph(p);
  CgrOptions opt;
  opt.codec = codec;
  for (auto _ : state) {
    auto cgr = CgrGraph::Encode(g, opt);
    benchmark::DoNotOptimize(cgr.value().total_bits());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ByteCodecEncodeGraph)->DenseRange(1, 2)->Unit(
    benchmark::kMillisecond);

void BM_ByteCodecDecodeAdjacency(benchmark::State& state) {
  CodecId codec = static_cast<CodecId>(state.range(0));
  WebGraphParams p;
  p.num_nodes = 10000;
  Graph g = GenerateWebGraph(p);
  CgrOptions opt;
  opt.codec = codec;
  auto cgr = CgrGraph::Encode(g, opt);
  for (auto _ : state) {
    uint64_t total = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      total += DecodeAdjacency(cgr.value(), u).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ByteCodecDecodeAdjacency)->DenseRange(1, 2)->Unit(
    benchmark::kMillisecond);

void BM_WarpCentricWindow(benchmark::State& state) {
  Rng rng(3);
  BitWriter w;
  const int kCount = 8192;
  for (int i = 0; i < kCount; ++i) {
    VlcEncode(VlcScheme::kZeta3, 1 + rng.Uniform(64), &w);
  }
  auto bytes = w.bytes();
  for (auto _ : state) {
    uint64_t pos = 0;
    int decoded = 0;
    while (decoded < kCount) {
      auto r = WarpCentricDecodeWindow(bytes.data(), w.num_bits(), pos, 32,
                                       VlcScheme::kZeta3, kCount - decoded);
      decoded += static_cast<int>(r.values.size());
      pos = r.next_bit_pos;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}
BENCHMARK(BM_WarpCentricWindow)->Unit(benchmark::kMillisecond);

// One hand-timed pass per scenario family for the JSON artifact.
void RunJsonScenarios(bench::JsonReport& json) {
  const char* names[] = {"gamma", "zeta2", "zeta3", "zeta4", "zeta5"};
  for (int si = 0; si <= 4; ++si) {
    VlcScheme scheme = static_cast<VlcScheme>(si);
    Rng rng(1);
    std::vector<uint64_t> values;
    for (int i = 0; i < 4096; ++i) values.push_back(1 + rng.Uniform(1 << 20));
    double t0 = bench::NowNs();
    BitWriter w;
    for (int rep = 0; rep < 64; ++rep) {
      w = BitWriter();
      for (uint64_t v : values) VlcEncode(scheme, v, &w);
    }
    json.Add(std::string("vlc_encode/") + names[si], bench::NowNs() - t0, 0.0);

    auto bytes = w.bytes();
    t0 = bench::NowNs();
    uint64_t sum = 0;
    for (int rep = 0; rep < 64; ++rep) {
      BitReader r(bytes.data(), w.num_bits());
      for (size_t i = 0; i < values.size(); ++i) sum += VlcDecode(scheme, &r);
    }
    benchmark::DoNotOptimize(sum);
    json.Add(std::string("vlc_decode/") + names[si], bench::NowNs() - t0, 0.0);
  }
  {
    WebGraphParams p;
    p.num_nodes = 10000;
    Graph g = GenerateWebGraph(p);
    double t0 = bench::NowNs();
    auto cgr = CgrGraph::Encode(g, CgrOptions{});
    json.Add("cgr_encode_graph", bench::NowNs() - t0, 0.0);
    t0 = bench::NowNs();
    uint64_t total = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      total += DecodeAdjacency(cgr.value(), u).size();
    }
    benchmark::DoNotOptimize(total);
    json.Add("cgr_decode_adjacency", bench::NowNs() - t0, 0.0);

    // Byte-codec backends over the same graph: encode + full decode sweep.
    for (CodecId codec : {CodecId::kStreamVByte, CodecId::kVarintGb}) {
      CgrOptions opt;
      opt.codec = codec;
      t0 = bench::NowNs();
      auto byte_cgr = CgrGraph::Encode(g, opt);
      json.Add(std::string("codec_encode_graph/") + CodecName(codec),
               bench::NowNs() - t0, 0.0);
      t0 = bench::NowNs();
      total = 0;
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        total += DecodeAdjacency(byte_cgr.value(), u).size();
      }
      benchmark::DoNotOptimize(total);
      json.Add(std::string("codec_decode_adjacency/") + CodecName(codec),
               bench::NowNs() - t0, 0.0);
    }
  }
  {
    Rng rng(3);
    BitWriter w;
    const int kCount = 8192;
    for (int i = 0; i < kCount; ++i) {
      VlcEncode(VlcScheme::kZeta3, 1 + rng.Uniform(64), &w);
    }
    auto bytes = w.bytes();
    double t0 = bench::NowNs();
    for (int rep = 0; rep < 16; ++rep) {
      uint64_t pos = 0;
      int decoded = 0;
      while (decoded < kCount) {
        auto r = WarpCentricDecodeWindow(bytes.data(), w.num_bits(), pos, 32,
                                         VlcScheme::kZeta3, kCount - decoded);
        decoded += static_cast<int>(r.values.size());
        pos = r.next_bit_pos;
      }
      benchmark::DoNotOptimize(decoded);
    }
    json.Add("warp_centric_window", bench::NowNs() - t0, 0.0);
  }
}

}  // namespace
}  // namespace gcgt

int main(int argc, char** argv) {
  gcgt::bench::JsonReport json(argc, argv);
  if (json.enabled()) {
    gcgt::RunJsonScenarios(json);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
