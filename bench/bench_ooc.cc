// Out-of-core tier sweep: one partitioned CGR container per dataset, served
// under a shrinking resident budget (100% -> 12.5% of the encoded payload)
// with the in-core session as the reference row.
//
// The pager is a modeled overlay — decode always reads the full encoded
// bits, so BFS/CC/BC labels must be BIT-IDENTICAL to the in-core run at
// every budget point; this bench cross-checks that and exits nonzero on any
// mismatch. What the budget changes is the modeled cost: partition faults
// and spills add external-tier transactions (CostModel::
// external_latency_multiplier), so model_cycles grows as the budget shrinks
// while the in-core row stays flat. Every row is deterministic (the pager
// runs in frontier order), so check_trend.py gates model_cycles at 0% drift
// across ALL rows, not just the in-core one.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "ooc/cgr_container.h"

namespace {

// Bitwise vector equality (doubles compared as raw bytes: the runs execute
// identical operation sequences, so even float results must match exactly).
template <typename T>
bool SameBits(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

bool SameResult(const gcgt::QueryResult& a, const gcgt::QueryResult& b) {
  using gcgt::QueryKind;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case QueryKind::kBfs:
      return SameBits(a.bfs().depth, b.bfs().depth);
    case QueryKind::kCc:
      return SameBits(a.cc().component, b.cc().component);
    case QueryKind::kBc:
      return SameBits(a.bc().dependency, b.bc().dependency) &&
             SameBits(a.bc().depth, b.bc().depth) &&
             SameBits(a.bc().sigma, b.bc().sigma);
    case QueryKind::kTriangle:
      return a.triangle().triangles == b.triangle().triangles &&
             SameBits(a.triangle().per_vertex, b.triangle().per_vertex);
    case QueryKind::kCommonNeighbor:
      return SameBits(a.common_neighbors().common,
                      b.common_neighbors().common);
    case QueryKind::kJaccard:
      return a.jaccard().common == b.jaccard().common &&
             a.jaccard().jaccard == b.jaccard().jaccard;
    case QueryKind::kSimilarityTopK:
      return a.similarity_topk().items == b.similarity_topk().items;
    case QueryKind::kKCore:
      return SameBits(a.kcore().in_core, b.kcore().in_core) &&
             a.kcore().core_size == b.kcore().core_size;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcgt;
  using bench::Cell;
  bench::JsonReport json(argc, argv);
  std::printf("== Out-of-core tier: resident-budget sweep (model ms) ==\n\n");

  constexpr int kPartitions = 8;
  // Budget points as 1/64ths of the encoded payload: 100%, 50%, 25%, 12.5%.
  struct BudgetPoint {
    const char* label;
    uint64_t num64;
  };
  const BudgetPoint kBudgets[] = {
      {"resident100", 64}, {"resident50", 32},
      {"resident25", 16},  {"resident12.5", 8},
  };

  auto datasets = bench::BuildDatasets();
  std::printf("%-10s %-4s %12s %12s %12s %12s %12s\n", "dataset", "app",
              "in-core", "100%", "50%", "25%", "12.5%");

  const std::filesystem::path container_path =
      std::filesystem::temp_directory_path() / "gcgt_bench_ooc.gcoc";
  int mismatches = 0;

  for (const auto& d : datasets) {
    // One partitioned encode per dataset; the same artifact serves the
    // in-core row (no budget => pager disabled) and, via the container
    // round-trip, every budget row. EncodePartitioned is byte-identical to
    // the serial encode, so "in-core" here is the plain session.
    PrepareOptions popt;
    popt.ooc_partitions = kPartitions;
    auto prepared = GcgtSession::Prepare(d.graph, popt);
    if (!prepared.ok()) continue;
    GcgtSession& incore = prepared.value();
    const simt::CostModel cost = incore.options().gcgt.cost;

    if (auto w = ooc::WriteCgrContainer(incore.cgr(),
                                        incore.artifact_fingerprint(),
                                        container_path.string());
        !w.ok()) {
      std::fprintf(stderr, "container write failed (%s): %s\n",
                   d.name.c_str(), w.ToString().c_str());
      return 1;
    }
    auto container = ooc::CgrContainer::Open(container_path.string());
    if (!container.ok()) {
      std::fprintf(stderr, "container open failed (%s): %s\n", d.name.c_str(),
                   container.status().ToString().c_str());
      return 1;
    }
    const uint64_t payload_bytes = container.value().PayloadBytes();

    // Container-backed sessions, one per budget point, all over the same
    // opened container (ToCgrGraph copies the payload per session).
    std::vector<std::pair<std::string, GcgtSession>> paged;
    for (const BudgetPoint& b : kBudgets) {
      auto cgr = container.value().ToCgrGraph();
      if (!cgr.ok()) {
        std::fprintf(stderr, "container decode failed (%s): %s\n",
                     d.name.c_str(), cgr.status().ToString().c_str());
        return 1;
      }
      GcgtOptions gopt;
      gopt.ooc_resident_bytes = std::max<uint64_t>(payload_bytes * b.num64 / 64,
                                                   1);
      paged.emplace_back(
          b.label,
          GcgtSession::Adopt(
              std::make_unique<const CgrGraph>(std::move(cgr).value()), gopt,
              incore.artifact_fingerprint()));
    }

    NodeId source = bench::BfsSources(d.graph, 1)[0];
    auto run_app = [&](const char* app, const Query& query) {
      std::printf("%-10s %-4s", d.name.c_str(), app);
      const double t0 = bench::NowNs();
      auto ref = incore.Run(query, {.backend = Backend::kCgrSimt});
      const double ref_wall = bench::NowNs() - t0;
      json.Add(d.name + "/" + app + "/in-core", ref.ok() ? ref_wall : 0.0,
               ref.ok()
                   ? bench::ModelCycles(ref.value().metrics().model_ms, cost)
                   : 0.0,
               {{"oom", ref.ok() ? "0" : "1"},
                {"partition_faults", "0"},
                {"partition_spills", "0"},
                {"resident_bytes_peak", "0"}});
      std::printf(" %12s",
                  ref.ok() ? Cell(ref.value().metrics().model_ms, 12, 3).c_str()
                           : Cell("OOM", 12).c_str());

      for (auto& [label, session] : paged) {
        const double t1 = bench::NowNs();
        auto r = session.Run(query, {.backend = Backend::kCgrSimt});
        const double wall = bench::NowNs() - t1;
        if (ref.ok() && r.ok() &&
            !SameResult(ref.value(), r.value())) {
          std::fprintf(stderr,
                       "MISMATCH: %s/%s/%s differs from the in-core result\n",
                       d.name.c_str(), app, label.c_str());
          ++mismatches;
        }
        std::vector<std::pair<std::string, std::string>> extra = {
            {"oom", r.ok() ? "0" : "1"}};
        if (r.ok()) {
          const TraversalMetrics& m = r.value().metrics();
          extra.emplace_back("partition_faults",
                             std::to_string(m.warp.partition_faults));
          extra.emplace_back("partition_spills",
                             std::to_string(m.warp.partition_spills));
          extra.emplace_back("resident_bytes_peak",
                             std::to_string(m.resident_bytes_peak));
        }
        json.Add(d.name + "/" + app + "/" + label, r.ok() ? wall : 0.0,
                 r.ok()
                     ? bench::ModelCycles(r.value().metrics().model_ms, cost)
                     : 0.0,
                 extra);
        std::printf(" %12s",
                    r.ok() ? Cell(r.value().metrics().model_ms, 12, 3).c_str()
                           : Cell("OOM", 12).c_str());
      }
      std::printf("\n");
    };

    run_app("BFS", BfsQuery{source});
    run_app("CC", CcQuery{});
    run_app("BC", BcQuery{{source}});
    std::printf("\n");
  }

  std::error_code ec;
  std::filesystem::remove(container_path, ec);
  if (mismatches != 0) {
    std::fprintf(stderr, "%d budget point(s) diverged from in-core\n",
                 mismatches);
    return 1;
  }
  return 0;
}
