// Paper Table 3: example gamma / zeta codewords. The printed codewords are
// pinned by unit tests (tests/vlc_test.cc) to the paper's exact bit strings.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "cgr/vlc.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  bench::JsonReport json(argc, argv);
  std::printf("== Table 3: gamma-code and zeta-code examples ==\n");
  std::printf("%8s %16s %16s %16s\n", "integer", "gamma", "zeta2", "zeta3");
  for (uint64_t v : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 12ull, 34ull}) {
    const double t0 = bench::NowNs();
    const std::string gamma = VlcToString(VlcScheme::kGamma, v);
    const std::string zeta2 = VlcToString(VlcScheme::kZeta2, v);
    const std::string zeta3 = VlcToString(VlcScheme::kZeta3, v);
    json.Add("vlc/" + std::to_string(v), bench::NowNs() - t0, 0.0,
             {{"gamma", gamma}, {"zeta2", zeta2}, {"zeta3", zeta3}});
    std::printf("%8llu %16s %16s %16s\n", static_cast<unsigned long long>(v),
                gamma.c_str(), zeta2.c_str(), zeta3.c_str());
  }
  return 0;
}
