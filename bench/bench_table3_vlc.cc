// Paper Table 3: example gamma / zeta codewords. The printed codewords are
// pinned by unit tests (tests/vlc_test.cc) to the paper's exact bit strings.
//
// Extended into the codec tradeoff study: every scaled dataset is encoded
// with every codec backend (CGR bit-packed VLC, StreamVByte, VarintGB) and
// one JSON row per (dataset, codec) records the three axes of the tradeoff:
//   compression_rate    — bits vs the raw CSR (higher is better)
//   decode_ns_per_edge  — host-side full adjacency decode sweep (lower)
//   model_cycles        — simulated-GPU BFS cost on the same encoding
// The decode sweep allocates one vector per node in all three configurations,
// so the absolute ns/edge overstates a production decoder but the *relative*
// spread is the codec signal.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "cgr/cgr_decoder.h"
#include "cgr/codec.h"
#include "cgr/vlc.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  bench::JsonReport json(argc, argv);
  std::printf("== Table 3: gamma-code and zeta-code examples ==\n");
  std::printf("%8s %16s %16s %16s\n", "integer", "gamma", "zeta2", "zeta3");
  for (uint64_t v : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 12ull, 34ull}) {
    const double t0 = bench::NowNs();
    const std::string gamma = VlcToString(VlcScheme::kGamma, v);
    const std::string zeta2 = VlcToString(VlcScheme::kZeta2, v);
    const std::string zeta3 = VlcToString(VlcScheme::kZeta3, v);
    json.Add("vlc/" + std::to_string(v), bench::NowNs() - t0, 0.0,
             {{"gamma", gamma}, {"zeta2", zeta2}, {"zeta3", zeta3}});
    std::printf("%8llu %16s %16s %16s\n", static_cast<unsigned long long>(v),
                gamma.c_str(), zeta2.c_str(), zeta3.c_str());
  }

  std::printf("\n== Codec tradeoff: rate x decode speed x model cycles ==\n");
  std::printf("%-10s %-12s %10s %14s %14s\n", "dataset", "codec", "rate",
              "decode ns/e", "bfs Mcycles");
  auto datasets = bench::BuildDatasets();
  const uint64_t budget = bench::DeviceBudgetBytes(datasets);
  for (const auto& d : datasets) {
    const NodeId src = bench::BfsSources(d.graph, 1)[0];
    for (CodecId codec : kAllCodecs) {
      CgrOptions copt;
      copt.codec = codec;
      auto prepared = bench::PreparedSession(d.graph, budget, copt);
      if (!prepared.ok()) {
        std::printf("%-10s %-12s %10s (%s)\n", d.name.c_str(),
                    CodecName(codec), "-",
                    prepared.status().ToString().c_str());
        continue;
      }
      GcgtSession& session = prepared.value();
      const CgrGraph& cgr = session.cgr();
      const double rate = bench::RateVsRaw(d.raw_edges, cgr.total_bits());

      double t0 = bench::NowNs();
      uint64_t edges = 0;
      for (NodeId u = 0; u < d.graph.num_nodes(); ++u) {
        edges += DecodeAdjacency(cgr, u).size();
      }
      const double decode_ns = bench::NowNs() - t0;
      const double ns_per_edge = edges > 0 ? decode_ns / edges : 0.0;

      auto r = session.Run(BfsQuery{src}, {});
      const double cycles =
          r.ok() ? bench::ModelCycles(r.value().metrics().model_ms,
                                      session.options().gcgt.cost)
                 : 0.0;
      const uint64_t decode_words =
          r.ok() ? r.value().metrics().warp.decode_words : 0;

      json.Add("table3/" + d.name + "/" + CodecName(codec), decode_ns, cycles,
               {{"compression_rate", std::to_string(rate)},
                {"decode_ns_per_edge", std::to_string(ns_per_edge)},
                {"decode_words", std::to_string(decode_words)},
                {"oom", r.ok() ? "0" : "1"}});
      std::printf("%-10s %-12s %10.3f %14.2f %14.3f\n", d.name.c_str(),
                  CodecName(codec), rate, ns_per_edge, cycles / 1e6);
    }
  }
  return 0;
}
