// Paper Table 3: example gamma / zeta codewords. The printed codewords are
// pinned by unit tests (tests/vlc_test.cc) to the paper's exact bit strings.
#include <cstdio>

#include "cgr/vlc.h"

int main() {
  using namespace gcgt;
  std::printf("== Table 3: gamma-code and zeta-code examples ==\n");
  std::printf("%8s %16s %16s %16s\n", "integer", "gamma", "zeta2", "zeta3");
  for (uint64_t v : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 12ull, 34ull}) {
    std::printf("%8llu %16s %16s %16s\n", static_cast<unsigned long long>(v),
                VlcToString(VlcScheme::kGamma, v).c_str(),
                VlcToString(VlcScheme::kZeta2, v).c_str(),
                VlcToString(VlcScheme::kZeta3, v).c_str());
  }
  return 0;
}
