// Paper Fig. 15 (Appendix E): GCGT extensions to Connected Components and
// Betweenness Centrality vs Gunrock and GPUCSR, with the scaled device
// memory budget (Gunrock OOMs on the two large datasets). GPUCSR CC is
// edge-centric (Soman et al.), which the paper notes is friendlier to
// twitter's super nodes than GCGT's node-centric frontier.
//
// One GcgtSession per dataset; the three engines are the session's backends
// answering the same CcQuery / BcQuery. A fourth, replay-paired GCGT
// configuration ("GCGT+replay") runs the same queries with the decoded-
// adjacency replay cache enabled: identical answers, same scenario shape,
// so the JSON rows expose the host-wall effect of skipping re-decodes for
// hot vertices. GCGT rows additionally surface replay/decode counters.
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  using bench::Cell;
  bench::JsonReport json(argc, argv);
  std::printf("== Fig. 15: CC and BC elapsed model time (ms) ==\n\n");

  auto datasets = bench::BuildDatasets();
  uint64_t budget = bench::DeviceBudgetBytes(datasets);
  std::printf("device memory budget (scaled 12GB): %.1f MB\n\n",
              budget / 1048576.0);
  std::printf("%-10s %-4s %12s %12s %12s %12s\n", "dataset", "app", "Gunrock",
              "GPUCSR", "GCGT", "GCGT+replay");

  // JSON/table order matches the printed columns.
  const Backend backends[] = {Backend::kCsrGunrock, Backend::kCsrBaseline,
                              Backend::kCgrSimt};

  for (const auto& d : datasets) {
    auto prepared = bench::PreparedSession(d.graph, budget);
    if (!prepared.ok()) continue;
    GcgtSession& session = prepared.value();
    const simt::CostModel cost = session.options().gcgt.cost;
    NodeId bc_source = bench::BfsSources(d.graph, 1)[0];
    std::vector<NodeId> bc4_sources = bench::BfsSources(d.graph, 4);

    // Replay-paired GCGT configuration: same encoding and budget, replay
    // cache on. 4MB fits every dataset inside the scaled budget with (near)
    // zero LRU churn; the degree-8 pre-gate keeps low-degree vertices from
    // paying capture bookkeeping; min_touches = 1 admits on first touch so
    // BC's backward sweep already replays (see tests/codec_test.cc).
    PrepareOptions ropt;
    ropt.gcgt.device.memory_bytes = budget;
    ropt.gcgt.replay_cache_bytes = 4ull << 20;
    ropt.gcgt.replay_min_degree = 8;
    ropt.gcgt.replay_min_touches = 1;
    auto replayed = GcgtSession::Prepare(d.graph, ropt);

    auto run_app = [&](const char* app, const Query& query) {
      std::printf("%-10s %-4s", d.name.c_str(), app);
      for (Backend backend : backends) {
        const double t0 = bench::NowNs();
        auto r = session.Run(query, {.backend = backend});
        const double wall = bench::NowNs() - t0;
        // OOM rows carry no measurement: zero both metrics and mark the row
        // so check_trend.py skips it explicitly.
        std::vector<std::pair<std::string, std::string>> extra = {
            {"oom", r.ok() ? "0" : "1"}};
        if (backend == Backend::kCgrSimt && r.ok()) {
          const simt::WarpStats& w = r.value().metrics().warp;
          extra.emplace_back("replay_hits", std::to_string(w.replay_hits));
          extra.emplace_back("replay_evictions",
                             std::to_string(w.replay_evictions));
          extra.emplace_back("decode_words", std::to_string(w.decode_words));
        }
        json.Add(d.name + "/" + app + "/" + BackendName(backend),
                 r.ok() ? wall : 0.0,
                 r.ok() ? bench::ModelCycles(r.value().metrics().model_ms,
                                             cost)
                        : 0.0,
                 extra);
        std::printf(" %12s",
                    r.ok() ? Cell(r.value().metrics().model_ms, 12, 3).c_str()
                           : Cell("OOM", 12).c_str());
      }
      if (replayed.ok()) {
        const double t0 = bench::NowNs();
        auto r = replayed.value().Run(query, {.backend = Backend::kCgrSimt});
        const double wall = bench::NowNs() - t0;
        std::vector<std::pair<std::string, std::string>> extra = {
            {"oom", r.ok() ? "0" : "1"}};
        if (r.ok()) {
          const simt::WarpStats& w = r.value().metrics().warp;
          extra.emplace_back("replay_hits", std::to_string(w.replay_hits));
          extra.emplace_back("replay_evictions",
                             std::to_string(w.replay_evictions));
          extra.emplace_back("decode_words", std::to_string(w.decode_words));
        }
        json.Add(d.name + "/" + app + "/GCGT+replay", r.ok() ? wall : 0.0,
                 r.ok() ? bench::ModelCycles(r.value().metrics().model_ms,
                                             cost)
                        : 0.0,
                 extra);
        std::printf(" %12s",
                    r.ok() ? Cell(r.value().metrics().model_ms, 12, 3).c_str()
                           : Cell("OOM", 12).c_str());
      }
      std::printf("\n");
    };
    run_app("CC", CcQuery{});
    run_app("BC", BcQuery{{bc_source}});

    // The decode-bound pairing: multi-source BC re-traverses the same
    // reachable set once per source and direction, so after the first sweep
    // warms the cache, the remaining sweeps replay instead of re-decoding —
    // this is where the warm-wall win shows (GCGT vs GCGT+replay only).
    auto run_gcgt_pair = [&](const char* app, const Query& query) {
      std::printf("%-10s %-4s %12s %12s", d.name.c_str(), app,
                  Cell("-", 12).c_str(), Cell("-", 12).c_str());
      GcgtSession* sessions[2] = {&session,
                                  replayed.ok() ? &replayed.value() : nullptr};
      const char* names[2] = {"GCGT", "GCGT+replay"};
      for (int i = 0; i < 2; ++i) {
        if (sessions[i] == nullptr) continue;
        const double t0 = bench::NowNs();
        auto r = sessions[i]->Run(query, {.backend = Backend::kCgrSimt});
        const double wall = bench::NowNs() - t0;
        std::vector<std::pair<std::string, std::string>> extra = {
            {"oom", r.ok() ? "0" : "1"}};
        if (r.ok()) {
          const simt::WarpStats& w = r.value().metrics().warp;
          extra.emplace_back("replay_hits", std::to_string(w.replay_hits));
          extra.emplace_back("replay_evictions",
                             std::to_string(w.replay_evictions));
          extra.emplace_back("decode_words", std::to_string(w.decode_words));
        }
        json.Add(d.name + "/" + app + "/" + names[i], r.ok() ? wall : 0.0,
                 r.ok() ? bench::ModelCycles(r.value().metrics().model_ms,
                                             cost)
                        : 0.0,
                 extra);
        std::printf(" %12s",
                    r.ok() ? Cell(r.value().metrics().model_ms, 12, 3).c_str()
                           : Cell("OOM", 12).c_str());
      }
      std::printf("\n");
    };
    run_gcgt_pair("BC4", BcQuery{bc4_sources});
    std::printf("\n");
  }
  return 0;
}
