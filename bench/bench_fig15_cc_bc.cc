// Paper Fig. 15 (Appendix E): GCGT extensions to Connected Components and
// Betweenness Centrality vs Gunrock and GPUCSR, with the scaled device
// memory budget (Gunrock OOMs on the two large datasets). GPUCSR CC is
// edge-centric (Soman et al.), which the paper notes is friendlier to
// twitter's super nodes than GCGT's node-centric frontier.
#include <cstdio>

#include "baseline/csr_gpu_engine.h"
#include "bench/bench_common.h"
#include "cgr/cgr_graph.h"
#include "core/bc.h"
#include "core/cc.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  using bench::Cell;
  bench::JsonReport json(argc, argv);
  std::printf("== Fig. 15: CC and BC elapsed model time (ms) ==\n\n");

  auto datasets = bench::BuildDatasets();
  uint64_t budget = bench::DeviceBudgetBytes(datasets);
  std::printf("device memory budget (scaled 12GB): %.1f MB\n\n",
              budget / 1048576.0);
  std::printf("%-10s %-4s %12s %12s %12s\n", "dataset", "app", "Gunrock",
              "GPUCSR", "GCGT");

  for (const auto& d : datasets) {
    auto cgr = CgrGraph::Encode(d.graph, CgrOptions{});
    if (!cgr.ok()) continue;
    NodeId bc_source = bench::BfsSources(d.graph, 1)[0];

    auto fmt = [](double ms, bool oom) {
      return oom ? Cell("OOM", 12) : Cell(ms, 12, 3);
    };

    // --- CC ---
    {
      CsrEngineOptions gunrock_opt;
      gunrock_opt.gunrock = true;
      gunrock_opt.device.memory_bytes = budget;
      CsrEngineOptions gpucsr_opt;
      gpucsr_opt.device.memory_bytes = budget;
      GcgtOptions gcgt_opt;
      gcgt_opt.device.memory_bytes = budget;

      double t0 = bench::NowNs();
      auto a = CsrCc(d.graph, gunrock_opt);
      double t1 = bench::NowNs();
      auto b = CsrCc(d.graph, gpucsr_opt);
      double t2 = bench::NowNs();
      auto c = GcgtCc(cgr.value(), gcgt_opt);
      double t3 = bench::NowNs();
      auto add = [&](const char* eng, double wall,
                     const Result<GcgtCcResult>& r) {
        json.Add(d.name + "/CC/" + eng, wall,
                 r.ok() ? bench::ModelCycles(r.value().metrics.model_ms,
                                             gcgt_opt.cost)
                        : 0.0,
                 {{"oom", r.ok() ? "0" : "1"}});
      };
      add("Gunrock", t1 - t0, a);
      add("GPUCSR", t2 - t1, b);
      add("GCGT", t3 - t2, c);
      std::printf("%-10s %-4s %12s %12s %12s\n", d.name.c_str(), "CC",
                  fmt(a.ok() ? a.value().metrics.model_ms : 0, !a.ok()).c_str(),
                  fmt(b.ok() ? b.value().metrics.model_ms : 0, !b.ok()).c_str(),
                  fmt(c.ok() ? c.value().metrics.model_ms : 0, !c.ok()).c_str());
    }
    // --- BC ---
    {
      CsrEngineOptions gunrock_opt;
      gunrock_opt.gunrock = true;
      gunrock_opt.device.memory_bytes = budget;
      CsrEngineOptions gpucsr_opt;
      gpucsr_opt.device.memory_bytes = budget;
      GcgtOptions gcgt_opt;
      gcgt_opt.device.memory_bytes = budget;

      double t0 = bench::NowNs();
      auto a = CsrBc(d.graph, bc_source, gunrock_opt);
      double t1 = bench::NowNs();
      auto b = CsrBc(d.graph, bc_source, gpucsr_opt);
      double t2 = bench::NowNs();
      auto c = GcgtBc(cgr.value(), bc_source, gcgt_opt);
      double t3 = bench::NowNs();
      auto add = [&](const char* eng, double wall,
                     const Result<GcgtBcResult>& r) {
        json.Add(d.name + "/BC/" + eng, wall,
                 r.ok() ? bench::ModelCycles(r.value().metrics.model_ms,
                                             gcgt_opt.cost)
                        : 0.0,
                 {{"oom", r.ok() ? "0" : "1"}});
      };
      add("Gunrock", t1 - t0, a);
      add("GPUCSR", t2 - t1, b);
      add("GCGT", t3 - t2, c);
      std::printf("%-10s %-4s %12s %12s %12s\n", d.name.c_str(), "BC",
                  fmt(a.ok() ? a.value().metrics.model_ms : 0, !a.ok()).c_str(),
                  fmt(b.ok() ? b.value().metrics.model_ms : 0, !b.ok()).c_str(),
                  fmt(c.ok() ? c.value().metrics.model_ms : 0, !c.ok()).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
