// Paper Fig. 15 (Appendix E): GCGT extensions to Connected Components and
// Betweenness Centrality vs Gunrock and GPUCSR, with the scaled device
// memory budget (Gunrock OOMs on the two large datasets). GPUCSR CC is
// edge-centric (Soman et al.), which the paper notes is friendlier to
// twitter's super nodes than GCGT's node-centric frontier.
//
// One GcgtSession per dataset; the three engines are the session's backends
// answering the same CcQuery / BcQuery.
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  using bench::Cell;
  bench::JsonReport json(argc, argv);
  std::printf("== Fig. 15: CC and BC elapsed model time (ms) ==\n\n");

  auto datasets = bench::BuildDatasets();
  uint64_t budget = bench::DeviceBudgetBytes(datasets);
  std::printf("device memory budget (scaled 12GB): %.1f MB\n\n",
              budget / 1048576.0);
  std::printf("%-10s %-4s %12s %12s %12s\n", "dataset", "app", "Gunrock",
              "GPUCSR", "GCGT");

  // JSON/table order matches the printed columns.
  const Backend backends[] = {Backend::kCsrGunrock, Backend::kCsrBaseline,
                              Backend::kCgrSimt};

  for (const auto& d : datasets) {
    auto prepared = bench::PreparedSession(d.graph, budget);
    if (!prepared.ok()) continue;
    GcgtSession& session = prepared.value();
    const simt::CostModel cost = session.options().gcgt.cost;
    NodeId bc_source = bench::BfsSources(d.graph, 1)[0];

    auto run_app = [&](const char* app, const Query& query) {
      std::printf("%-10s %-4s", d.name.c_str(), app);
      for (Backend backend : backends) {
        const double t0 = bench::NowNs();
        auto r = session.Run(query, {.backend = backend});
        const double wall = bench::NowNs() - t0;
        // OOM rows carry no measurement: zero both metrics and mark the row
        // so check_trend.py skips it explicitly.
        json.Add(d.name + "/" + app + "/" + BackendName(backend),
                 r.ok() ? wall : 0.0,
                 r.ok() ? bench::ModelCycles(r.value().metrics().model_ms,
                                             cost)
                        : 0.0,
                 {{"oom", r.ok() ? "0" : "1"}});
        std::printf(" %12s",
                    r.ok() ? Cell(r.value().metrics().model_ms, 12, 3).c_str()
                           : Cell("OOM", 12).c_str());
      }
      std::printf("\n");
    };
    run_app("CC", CcQuery{});
    run_app("BC", BcQuery{{bc_source}});
    std::printf("\n");
  }
  return 0;
}
