// Paper Fig. 12 (Appendix D): effect of the minimum interval length
// (2, 3, 4, 5, 10, inf) on BFS time and compression rate.
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  std::printf("== Fig. 12: varying the minimum interval length ==\n\n");
  auto datasets = bench::BuildDatasets();
  std::vector<bench::SweepVariant> variants;
  for (int len : {2, 3, 4, 5, 10}) {
    CgrOptions o;
    o.min_interval_len = len;
    variants.push_back({std::to_string(len), o});
  }
  CgrOptions inf;
  inf.min_interval_len = CgrOptions::kNoIntervals;
  variants.push_back({"inf", inf});
  bench::JsonReport json(argc, argv);
  bench::RunCgrSweep(datasets, variants, &json);
  return 0;
}
