// Paper Fig. 9: impact of applying the GCGT optimizations incrementally
// (Intuitive -> +TwoPhase -> +TaskStealing -> +WarpCentric ->
// +ResidualSegmentation = full GCGT). Levels 0-3 run on the unsegmented CGR,
// the final level on the segmented layout (that is the encoding the
// technique introduces). Annotations are slowdowns relative to full GCGT,
// like the paper's "3.3x .. 1.0x" labels.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "cgr/cgr_graph.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  bench::JsonReport json(argc, argv);
  std::printf("== Fig. 9: optimization impact (BFS model ms, x = vs GCGT) ==\n\n");

  auto datasets = bench::BuildDatasets();
  const GcgtLevel levels[] = {GcgtLevel::kIntuitive, GcgtLevel::kTwoPhase,
                              GcgtLevel::kTaskStealing, GcgtLevel::kWarpCentric,
                              GcgtLevel::kFull};

  std::printf("%-10s", "dataset");
  for (GcgtLevel level : levels) {
    std::printf(" %26s", GcgtLevelName(level));
  }
  std::printf("\n");

  for (const auto& d : datasets) {
    // Encode each layout once; every ladder rung is a session attached to
    // the shared encoding (one engine per rung serving the whole batch).
    CgrOptions unseg;
    unseg.segment_len_bytes = 0;
    auto cgr_unseg = CgrGraph::Encode(d.graph, unseg);
    auto cgr_seg = CgrGraph::Encode(d.graph, CgrOptions{});
    if (!cgr_unseg.ok() || !cgr_seg.ok()) continue;
    auto batch = bench::BfsBatch(bench::BfsSources(d.graph));

    std::vector<double> ms;
    for (GcgtLevel level : levels) {
      GcgtOptions opt;
      opt.level = level;
      GcgtSession session = GcgtSession::Attach(
          level == GcgtLevel::kFull ? cgr_seg.value() : cgr_unseg.value(),
          opt);
      double total = 0;
      const double t0 = bench::NowNs();
      auto results = session.RunBatch(batch);
      if (results.ok()) {
        for (const QueryResult& r : results.value()) {
          total += r.metrics().model_ms;
        }
      }
      json.Add(d.name + "/" + GcgtLevelName(level), bench::NowNs() - t0,
               bench::ModelCycles(total, opt.cost));
      ms.push_back(total / batch.size());
    }
    double full = ms.back();
    std::printf("%-10s", d.name.c_str());
    for (double m : ms) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.3fms (%.1fx)", m,
                    full > 0 ? m / full : 0.0);
      std::printf(" %26s", cell);
    }
    std::printf("\n");
  }
  return 0;
}
