// Paper Fig. 9: impact of applying the GCGT optimizations incrementally
// (Intuitive -> +TwoPhase -> +TaskStealing -> +WarpCentric ->
// +ResidualSegmentation = full GCGT). Levels 0-3 run on the unsegmented CGR,
// the final level on the segmented layout (that is the encoding the
// technique introduces). Annotations are slowdowns relative to full GCGT,
// like the paper's "3.3x .. 1.0x" labels.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "cgr/cgr_graph.h"
#include "core/bfs.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  bench::JsonReport json(argc, argv);
  std::printf("== Fig. 9: optimization impact (BFS model ms, x = vs GCGT) ==\n\n");

  auto datasets = bench::BuildDatasets();
  const GcgtLevel levels[] = {GcgtLevel::kIntuitive, GcgtLevel::kTwoPhase,
                              GcgtLevel::kTaskStealing, GcgtLevel::kWarpCentric,
                              GcgtLevel::kFull};

  std::printf("%-10s", "dataset");
  for (GcgtLevel level : levels) {
    std::printf(" %26s", GcgtLevelName(level));
  }
  std::printf("\n");

  for (const auto& d : datasets) {
    CgrOptions unseg;
    unseg.segment_len_bytes = 0;
    auto cgr_unseg = CgrGraph::Encode(d.graph, unseg);
    auto cgr_seg = CgrGraph::Encode(d.graph, CgrOptions{});
    if (!cgr_unseg.ok() || !cgr_seg.ok()) continue;
    auto sources = bench::BfsSources(d.graph);

    std::vector<double> ms;
    for (GcgtLevel level : levels) {
      GcgtOptions opt;
      opt.level = level;
      const CgrGraph& graph =
          level == GcgtLevel::kFull ? cgr_seg.value() : cgr_unseg.value();
      double total = 0;
      const double t0 = bench::NowNs();
      for (NodeId s : sources) {
        auto res = GcgtBfs(graph, s, opt);
        if (res.ok()) total += res.value().metrics.model_ms;
      }
      json.Add(d.name + "/" + GcgtLevelName(level), bench::NowNs() - t0,
               bench::ModelCycles(total, opt.cost));
      ms.push_back(total / sources.size());
    }
    double full = ms.back();
    std::printf("%-10s", d.name.c_str());
    for (double m : ms) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.3fms (%.1fx)", m,
                    full > 0 ? m / full : 0.0);
      std::printf(" %26s", cell);
    }
    std::printf("\n");
  }
  return 0;
}
