#!/usr/bin/env python3
"""Diff two bench JSON artifacts and fail on model-cycle regressions.

Usage:
  check_trend.py BASELINE.json CURRENT.json [--max-regress-pct N]
                 [--metric model_cycles] [--require-all]
                 [--higher-is-better] [--min-abs-delta D]

Both files are arrays of rows as written by bench::JsonReport:
  {"scenario": "...", "wall_ns": ..., "model_cycles": ..., ...}

Scenarios present in both files with a positive baseline metric are
compared; the tool exits non-zero when any scenario's metric regressed by
more than --max-regress-pct percent. model_cycles is deterministic (the
simulator is bit-exact), so regressions there are real code changes, not
noise; wall_ns can be checked with a generous threshold instead.

By default smaller is better (cycles, latency). --higher-is-better flips
the direction for throughput-style metrics (e.g. the service load
generator's qps): a regression is then a metric that SHRANK by more than
--max-regress-pct percent.

Noisy wall-clock metrics (the load generator's p99_ms on a small, loaded
CI box) need a second guard: --min-abs-delta D additionally requires the
regression to exceed D in the metric's own unit before it counts, so a
large relative swing on a tiny absolute value (0.2ms -> 0.5ms) doesn't
fail the build while a real blowup (5ms -> 50ms) still does.

Scenarios only present in one file are reported as added/removed (and fail
the check under --require-all, which guards against a bench silently
dropping coverage).

Rows marked "oom": "1" are scenarios whose engine exceeded the simulated
device-memory budget: they carry no measurement (the benches emit wall_ns 0
and model_cycles 0 for them). A scenario OOM in BOTH files is skipped
explicitly; a scenario that newly became OOM against a live baseline is a
regression; one that recovered from a baseline OOM is reported but has no
baseline signal to compare against.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        rows = json.load(f)
    out = {}
    for row in rows:
        out[row["scenario"]] = row
    return out


def is_oom(row):
    return str(row.get("oom", "0")) == "1"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regress-pct", type=float, default=5.0,
                        help="fail when metric grows more than this percent "
                             "(default: 5)")
    parser.add_argument("--metric", default="model_cycles",
                        help="row field to compare (default: model_cycles)")
    parser.add_argument("--require-all", action="store_true",
                        help="fail when the current file is missing any "
                             "baseline scenario")
    parser.add_argument("--higher-is-better", action="store_true",
                        help="the metric is a throughput: regression = it "
                             "shrank by more than --max-regress-pct")
    parser.add_argument("--min-abs-delta", type=float, default=0.0,
                        help="also require the regression to exceed this "
                             "absolute delta in the metric's unit "
                             "(default: 0 = percent threshold alone decides)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    removed = sorted(set(base) - set(cur))
    added = sorted(set(cur) - set(base))
    for name in removed:
        print(f"removed:   {name}")
    for name in added:
        print(f"added:     {name}")

    regressions = []
    improved = 0
    unchanged = 0
    skipped_oom = 0
    recovered = 0
    for name in sorted(set(base) & set(cur)):
        b_row, c_row = base[name], cur[name]
        if is_oom(b_row) and is_oom(c_row):
            skipped_oom += 1  # expected OOM in both runs: nothing to compare
            continue
        if is_oom(c_row) and not is_oom(b_row):
            b = float(b_row.get(args.metric, 0))
            if b > 0:
                regressions.append((name, b, 0.0, -100.0))
                print(f"REGRESSED: {name}: scenario became OOM against a "
                      f"live baseline ({args.metric} {b:.0f} -> OOM)")
            else:
                skipped_oom += 1  # baseline had no signal anyway (CPU row)
            continue
        if is_oom(b_row) and not is_oom(c_row):
            recovered += 1
            print(f"recovered: {name} (baseline OOM, now produces "
                  f"{args.metric}={float(c_row.get(args.metric, 0)):.0f}; "
                  f"no baseline to compare)")
            continue
        b = float(b_row.get(args.metric, 0))
        c = float(c_row.get(args.metric, 0))
        if b <= 0:
            continue  # no baseline signal (CPU rows)
        if c <= 0:
            # Metric collapsed to zero against a live baseline — typically an
            # unmarked failure row. The worst regression, not an improvement.
            regressions.append((name, b, c, -100.0))
            print(f"REGRESSED: {name}: {args.metric} {b:.0f} -> 0 "
                  f"(scenario stopped producing a result)")
            continue
        delta_pct = 100.0 * (c - b) / b
        regressed = (delta_pct < -args.max_regress_pct
                     if args.higher_is_better
                     else delta_pct > args.max_regress_pct)
        if regressed and abs(c - b) < args.min_abs_delta:
            regressed = False  # relative swing on a negligible absolute value
        if regressed:
            regressions.append((name, b, c, delta_pct))
            print(f"REGRESSED: {name}: {args.metric} {b:.0f} -> {c:.0f} "
                  f"({delta_pct:+.2f}%)")
        elif (c > b) if args.higher_is_better else (c < b):
            improved += 1
        else:
            unchanged += 1

    print(f"\n{len(base)} baseline / {len(cur)} current scenarios; "
          f"{improved} improved, {unchanged} unchanged/within-threshold, "
          f"{skipped_oom} skipped (OOM), {recovered} recovered, "
          f"{len(regressions)} regressed "
          f"(metric={args.metric}, threshold={args.max_regress_pct}%)")

    if regressions:
        return 1
    if args.require_all and removed:
        print("FAIL: --require-all set and scenarios were removed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
