#include "bench/bench_common.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "util/random.h"

namespace gcgt::bench {
namespace {

// Scaled-down stand-ins for the paper's datasets (Table 1). Sizes are chosen
// so the full benchmark suite runs in minutes on two cores while preserving
// each dataset's structural signature: |E| ratios roughly follow the paper
// (uk-2007 and twitter are the two large ones), uk-* are interval-rich and
// template-heavy, twitter is hub-skewed, brain is dense and uniform.
Graph RawByName(const std::string& name) {
  if (name == "uk-2002") {
    WebGraphParams p;
    p.num_nodes = 40000;
    p.avg_degree = 16;
    p.mean_host_size = 48;
    p.seed = 1002;
    return GenerateWebGraph(p);
  }
  if (name == "uk-2007") {
    WebGraphParams p;
    p.num_nodes = 80000;
    p.avg_degree = 38;
    p.mean_host_size = 64;
    p.template_fraction = 0.60;
    p.seed = 1007;
    return GenerateWebGraph(p);
  }
  if (name == "ljournal") {
    SocialGraphParams p;
    p.num_nodes = 25000;
    p.avg_degree = 11;
    p.seed = 1008;
    return GenerateSocialGraph(p);
  }
  if (name == "twitter") {
    TwitterGraphParams p;
    p.num_nodes = 50000;
    p.avg_degree = 30;
    p.num_hubs = 12;
    p.seed = 1010;
    return GenerateTwitterGraph(p);
  }
  if (name == "brain") {
    BrainGraphParams p;
    p.num_nodes = 6000;
    p.avg_degree = 130;
    p.seed = 1015;
    return GenerateBrainGraph(p);
  }
  std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
  std::abort();
}

// ---------------------------------------------------------------------------
// Preprocessed-dataset cache. VNC + reordering dominate bench startup; both
// are deterministic, so the result is cached as binary CSR plus a small meta
// file. Bump kCacheVersion whenever generators or preprocessing change.
// ---------------------------------------------------------------------------
constexpr int kCacheVersion = 2;  // v2: VNC sorted-run bucket mining

std::string CacheDir() {
  const char* env = std::getenv("GCGT_BENCH_CACHE");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) return {};
    return env;
  }
  return "gcgt_bench_cache";
}

std::string CacheStem(const std::string& dir, const std::string& name,
                      ReorderMethod reorder, bool apply_vnc) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s/%s-r%d-vnc%d-v%d", dir.c_str(),
                name.c_str(), static_cast<int>(reorder), apply_vnc ? 1 : 0,
                kCacheVersion);
  return buf;
}

bool LoadCachedDataset(const std::string& stem, Dataset* d) {
  std::ifstream meta(stem + ".meta");
  int version = 0;
  EdgeId raw_edges = 0;
  double vnc_reduction = 0.0;
  if (!(meta >> version >> raw_edges >> vnc_reduction) ||
      version != kCacheVersion) {
    return false;
  }
  auto graph = ReadBinaryCsr(stem + ".csr");
  if (!graph.ok()) return false;
  d->graph = std::move(graph.value());
  d->raw_edges = raw_edges;
  d->vnc_reduction = vnc_reduction;
  return true;
}

void StoreCachedDataset(const std::string& dir, const std::string& stem,
                        const Dataset& d) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;  // cache is best-effort

  // Concurrent-writer guard: several bench binaries (the fig benches and the
  // service load generator) may cold-start against one cache directory at
  // once. Each writer stages to a process+thread-unique temp file and
  // atomically renames it into place, so readers only ever see complete
  // files. Writers racing on one stem is benign: the pipeline is
  // deterministic, every writer produces identical bytes. The .meta file is
  // renamed LAST — LoadCachedDataset reads it first, so a visible .meta
  // implies the .csr it describes is already in place.
  char unique[64];
  std::snprintf(unique, sizeof(unique), ".tmp.%ld.%zu",
                static_cast<long>(::getpid()),
                std::hash<std::thread::id>{}(std::this_thread::get_id()));
  const std::string csr_tmp = stem + ".csr" + unique;
  const std::string meta_tmp = stem + ".meta" + unique;

  if (!WriteBinaryCsr(d.graph, csr_tmp).ok()) {
    std::filesystem::remove(csr_tmp, ec);  // partial write (e.g. disk full)
    return;
  }
  std::filesystem::rename(csr_tmp, stem + ".csr", ec);
  if (ec) {
    std::filesystem::remove(csr_tmp, ec);
    return;
  }
  bool meta_ok;
  {
    std::ofstream meta(meta_tmp);
    meta << kCacheVersion << " " << d.raw_edges << " " << d.vnc_reduction
         << "\n";
    meta.close();  // surface buffered-write/flush failures before checking
    meta_ok = static_cast<bool>(meta);
  }
  if (!meta_ok) {
    std::filesystem::remove(meta_tmp, ec);
    return;
  }
  std::filesystem::rename(meta_tmp, stem + ".meta", ec);
  if (ec) std::filesystem::remove(meta_tmp, ec);
}

}  // namespace

std::vector<std::string> DatasetNames() {
  return {"uk-2002", "uk-2007", "ljournal", "twitter", "brain"};
}

Graph BuildRawGraph(const std::string& name) { return RawByName(name); }

Dataset BuildDataset(const std::string& name, ReorderMethod reorder,
                     bool apply_vnc) {
  Dataset d;
  d.name = name;

  const std::string dir = CacheDir();
  const std::string stem =
      dir.empty() ? std::string() : CacheStem(dir, name, reorder, apply_vnc);
  if (!stem.empty() && LoadCachedDataset(stem, &d)) return d;

  d.raw = RawByName(name);
  d.raw_edges = d.raw.num_edges();
  Graph transformed;
  if (apply_vnc) {
    VncResult vnc = VirtualNodeCompress(d.raw);
    d.vnc_reduction = vnc.EdgeReduction();
    transformed = std::move(vnc.graph);
  } else {
    transformed = d.raw;
  }
  d.graph = reorder == ReorderMethod::kOriginal
                ? std::move(transformed)
                : ApplyReordering(transformed, reorder);
  if (!stem.empty()) StoreCachedDataset(dir, stem, d);
  return d;
}

std::vector<Dataset> BuildDatasets(ReorderMethod reorder, bool apply_vnc) {
  std::vector<Dataset> out;
  for (const std::string& name : DatasetNames()) {
    out.push_back(BuildDataset(name, reorder, apply_vnc));
  }
  return out;
}

uint64_t DeviceBudgetBytes(const std::vector<Dataset>& datasets) {
  // paper ratio: 12 GB / (1.46B twitter edges * 4B + offsets) ~ 2.06x CSR.
  for (const Dataset& d : datasets) {
    if (d.name == "twitter") {
      uint64_t csr = 4ull * (d.graph.num_nodes() + 1) + 4ull * d.graph.num_edges();
      return static_cast<uint64_t>(csr * 2.06);
    }
  }
  return 12ull << 30;
}

std::vector<NodeId> BfsSources(const Graph& g, int count) {
  Rng rng(20190630);
  std::vector<NodeId> sources;
  for (int i = 0; i < count; ++i) {
    // Prefer sources with outgoing edges so runs are non-trivial.
    NodeId s = 0;
    for (int tries = 0; tries < 64; ++tries) {
      s = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
      if (g.out_degree(s) > 0) break;
    }
    sources.push_back(s);
  }
  return sources;
}

double WallMs(const std::function<void()>& fn, int repeats) {
  std::vector<double> times;
  for (int i = 0; i < repeats; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

std::string Cell(double value, int width, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, value);
  return buf;
}

std::string Cell(const std::string& s, int width) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%*s", width, s.c_str());
  return buf;
}

double ModelCycles(double model_ms, const simt::CostModel& cost) {
  return model_ms * cost.clock_ghz * 1e6;
}

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double RateVsRaw(EdgeId raw_edges, uint64_t representation_bits) {
  return representation_bits
             ? 32.0 * static_cast<double>(raw_edges) /
                   static_cast<double>(representation_bits)
             : 0.0;
}

Result<GcgtSession> PreparedSession(const Graph& graph,
                                    uint64_t device_budget_bytes,
                                    const CgrOptions& cgr, GcgtLevel level) {
  PrepareOptions opt;
  opt.cgr = cgr;
  opt.gcgt.level = level;
  if (device_budget_bytes != 0) {
    opt.gcgt.device.memory_bytes = device_budget_bytes;
  }
  return GcgtSession::Prepare(graph, opt);
}

std::vector<Query> BfsBatch(const std::vector<NodeId>& sources) {
  std::vector<Query> batch;
  batch.reserve(sources.size());
  for (NodeId s : sources) batch.push_back(BfsQuery{s});
  return batch;
}

void RunCgrSweep(const std::vector<Dataset>& datasets,
                 const std::vector<SweepVariant>& variants, JsonReport* json) {
  std::printf("%-10s %-10s %12s %12s\n", "dataset", "variant", "bfs_ms",
              "compr_rate");
  const simt::CostModel cost;
  for (const Dataset& d : datasets) {
    auto batch = BfsBatch(BfsSources(d.graph));
    for (const SweepVariant& v : variants) {
      // Prepare once per variant (one encode + one engine), then run the
      // whole source batch through the session.
      auto session = PreparedSession(d.graph, 0, v.options);
      if (!session.ok()) {
        std::printf("%-10s %-10s %12s %12s  (%s)\n", d.name.c_str(),
                    v.label.c_str(), "-", "-",
                    session.status().ToString().c_str());
        continue;
      }
      const double t0 = NowNs();
      auto results = session.value().RunBatch(batch);
      const double wall_ns = NowNs() - t0;
      double total = 0;
      int ok_runs = 0;
      if (results.ok()) {
        for (const QueryResult& r : results.value()) {
          total += r.metrics().model_ms;
          ++ok_runs;
        }
      }
      double rate =
          RateVsRaw(d.raw_edges, session.value().cgr().total_bits());
      std::printf("%-10s %-10s %12s %12s\n", d.name.c_str(), v.label.c_str(),
                  Cell(ok_runs ? total / ok_runs : 0.0, 12, 3).c_str(),
                  Cell(rate, 12, 2).c_str());
      if (json != nullptr) {
        json->Add(d.name + "/" + v.label, wall_ns, ModelCycles(total, cost),
                  {{"compr_rate", Cell(rate, 0, 2)}});
      }
    }
    std::printf("\n");
  }
}

JsonReport::JsonReport(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      path_ = argv[i + 1];
      return;
    }
    if (std::strncmp(arg, "--json=", 7) == 0) {
      path_ = arg + 7;
      return;
    }
  }
}

JsonReport::~JsonReport() { Write(); }

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
    out.push_back(c);
  }
  return out;
}

}  // namespace

void JsonReport::Add(
    const std::string& scenario, double wall_ns, double model_cycles,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  if (!enabled()) return;
  std::string row;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"scenario\": \"%s\", \"wall_ns\": %.0f, \"model_cycles\": "
                "%.0f",
                JsonEscape(scenario).c_str(), wall_ns, model_cycles);
  row = buf;
  for (const auto& [key, value] : extra) {
    row += ", \"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
  }
  row += "}";
  rows_.push_back(std::move(row));
}

void JsonReport::Write() {
  if (!enabled() || written_) return;
  written_ = true;
  std::ofstream out(path_);
  if (!out) {
    std::fprintf(stderr, "JsonReport: cannot write %s\n", path_.c_str());
    return;
  }
  out << "[\n";
  for (size_t i = 0; i < rows_.size(); ++i) {
    out << "  " << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
  }
  out << "]\n";
}

}  // namespace gcgt::bench
