// Decode-free set-intersection sweep: per dataset, triangle counting and a
// Zipf-repeated Jaccard pair batch under three engine configurations —
//   full-decode   decode every adjacency into scratch, merge element-wise
//                 (the "decompress-then-intersect" strawman)
//   decode-free   merge interval runs and residuals straight off the
//                 compressed stream (the tentpole path)
//   decode+replay decode-free with the replay cache enabled: lists touched
//                 repeatedly WITHIN one query (triangle re-streams every
//                 vertex once per neighbor) are served from decoded
//                 adjacency instead of re-walking the bitstream
//
// All three execute the same intersection semantics, so their results must
// be BIT-IDENTICAL to each other and to the CPU reference; this bench
// cross-checks that and exits nonzero on any mismatch. It also enforces the
// headline claim — decode-free strictly undercuts full-decode on modeled
// cycles for every scenario — and exits nonzero on a violation, so the
// committed BENCH_intersect.json can never record a regression of the
// paper's main effect. Every row is deterministic (bit-exact simulator, no
// randomness beyond fixed seeds): check_trend.py gates model_cycles AND
// intersect_txns at 0% drift.
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "util/random.h"

namespace {

template <typename T>
bool SameBits(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

bool SameResult(const gcgt::QueryResult& a, const gcgt::QueryResult& b) {
  using gcgt::QueryKind;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case QueryKind::kTriangle:
      return a.triangle().triangles == b.triangle().triangles &&
             SameBits(a.triangle().per_vertex, b.triangle().per_vertex);
    case QueryKind::kJaccard:
      return a.jaccard().common == b.jaccard().common &&
             a.jaccard().jaccard == b.jaccard().jaccard &&
             a.jaccard().degree_u == b.jaccard().degree_u &&
             a.jaccard().degree_v == b.jaccard().degree_v;
    default:
      return false;
  }
}

/// Zipf-ish endpoint: low prepared ids are the high-degree nodes after the
/// degree-aware reorders, and real workloads hit hot vertices repeatedly —
/// exactly the access pattern the replay cache exists for.
gcgt::NodeId ZipfNode(gcgt::Rng& rng, gcgt::NodeId n) {
  const gcgt::NodeId hot = std::max<gcgt::NodeId>(1, n / 64);
  return static_cast<gcgt::NodeId>(
      rng.Bernoulli(0.75) ? rng.Uniform(hot) : rng.Uniform(n));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcgt;
  using bench::Cell;
  bench::JsonReport json(argc, argv);
  std::printf(
      "== Decode-free set intersection: triangle + Zipf Jaccard batch "
      "(model ms) ==\n\n");

  struct ModeSpec {
    const char* label;
    bool full_decode;
    uint64_t replay_bytes;
  };
  const ModeSpec kModes[] = {
      {"full-decode", true, 0},
      {"decode-free", false, 0},
      {"decode+replay", false, 16ull << 20},
  };
  constexpr int kJaccardPairs = 64;

  auto datasets = bench::BuildDatasets();
  std::printf("%-10s %-9s %14s %14s %14s %10s\n", "dataset", "app",
              "full-decode", "decode-free", "decode+replay", "cpu-ms");

  int violations = 0;
  for (const auto& d : datasets) {
    // One session per mode. The intersect knobs participate in the artifact
    // fingerprint, but the encoded bits are identical — only the engine's
    // merge strategy (and therefore the modeled charges) differs.
    std::vector<std::pair<std::string, GcgtSession>> sessions;
    for (const ModeSpec& m : kModes) {
      PrepareOptions popt;
      popt.gcgt.intersect_full_decode = m.full_decode;
      popt.gcgt.replay_cache_bytes = m.replay_bytes;
      popt.gcgt.replay_min_degree = 8;
      auto s = GcgtSession::Prepare(d.graph, popt);
      if (!s.ok()) {
        std::fprintf(stderr, "prepare failed (%s/%s): %s\n", d.name.c_str(),
                     m.label, s.status().ToString().c_str());
        return 1;
      }
      sessions.emplace_back(m.label, std::move(s).value());
    }
    const simt::CostModel cost = sessions[0].second.options().gcgt.cost;

    // Fixed Zipf-repeated pair batch per dataset (deterministic).
    Rng rng(0x5eed + d.graph.num_nodes());
    std::vector<Query> pairs;
    for (int i = 0; i < kJaccardPairs; ++i) {
      pairs.push_back(JaccardQuery{ZipfNode(rng, d.graph.num_nodes()),
                                   ZipfNode(rng, d.graph.num_nodes())});
    }

    // Runs `queries` on one session; returns {wall_ns, model_cycles,
    // intersect_txns} and appends results for the cross-check.
    auto run_batch = [&](GcgtSession& session, const std::vector<Query>& qs,
                         std::vector<QueryResult>* out, double* cycles,
                         uint64_t* txns, double* model_ms) -> double {
      *cycles = 0;
      *txns = 0;
      *model_ms = 0;
      const double t0 = bench::NowNs();
      for (const Query& q : qs) {
        auto r = session.Run(q, {.backend = Backend::kCgrSimt});
        if (!r.ok()) {
          std::fprintf(stderr, "query failed (%s): %s\n", d.name.c_str(),
                       r.status().ToString().c_str());
          std::exit(1);
        }
        const TraversalMetrics& m = r.value().metrics();
        *cycles += bench::ModelCycles(m.model_ms, cost);
        *txns += m.warp.intersect_txns;
        *model_ms += m.model_ms;
        if (out) out->push_back(std::move(r).value());
      }
      return bench::NowNs() - t0;
    };

    auto run_app = [&](const char* app, const std::vector<Query>& qs) {
      std::printf("%-10s %-9s", d.name.c_str(), app);
      std::vector<std::vector<QueryResult>> results(sessions.size());
      std::vector<double> cycles(sessions.size());
      std::vector<double> mode_ms(sessions.size());
      for (size_t i = 0; i < sessions.size(); ++i) {
        uint64_t txns = 0;
        const double wall = run_batch(sessions[i].second, qs, &results[i],
                                      &cycles[i], &txns, &mode_ms[i]);
        json.Add(d.name + "/" + app + "/" + sessions[i].first, wall,
                 cycles[i], {{"intersect_txns", std::to_string(txns)}});
        std::printf(" %14s", Cell(mode_ms[i], 14, 3).c_str());
      }
      // CPU reference: the bit-identity oracle for every mode.
      std::vector<QueryResult> cpu;
      const double cpu_t0 = bench::NowNs();
      for (const Query& q : qs) {
        auto r = sessions[0].second.Run(q, {.backend = Backend::kCpuReference});
        if (!r.ok()) {
          std::fprintf(stderr, "cpu reference failed (%s): %s\n",
                       d.name.c_str(), r.status().ToString().c_str());
          std::exit(1);
        }
        cpu.push_back(std::move(r).value());
      }
      std::printf(" %10s\n",
                  Cell((bench::NowNs() - cpu_t0) / 1e6, 10, 1).c_str());

      for (size_t i = 0; i < sessions.size(); ++i) {
        for (size_t q = 0; q < qs.size(); ++q) {
          if (!SameResult(results[i][q], cpu[q])) {
            std::fprintf(stderr,
                         "MISMATCH: %s/%s/%s query %zu differs from the CPU "
                         "reference\n",
                         d.name.c_str(), app, sessions[i].first.c_str(), q);
            ++violations;
          }
        }
      }
      // The headline effect: merging off the compressed stream must beat
      // decompress-then-intersect on modeled cycles (replay only helps).
      if (!(cycles[1] < cycles[0])) {
        std::fprintf(stderr,
                     "VIOLATION: %s/%s decode-free (%.0f cycles) does not "
                     "undercut full-decode (%.0f cycles)\n",
                     d.name.c_str(), app, cycles[1], cycles[0]);
        ++violations;
      }
      // No ordering assertion for the replay row: the cache resets per
      // query, and a hit charges the FULL decoded list where the compressed
      // merge would have gallop-skipped most of it — so replay wins only
      // when lists are consumed whole (its BFS-expansion home turf) and
      // loses on skip-heavy intersections. The row is kept as data; the 0%
      // trend gate still pins it.
    };

    run_app("triangle", {TriangleCountQuery{}});
    run_app("jaccard64", pairs);
    std::printf("\n");
  }

  if (violations > 0) {
    std::fprintf(stderr, "%d violation(s)\n", violations);
    return 1;
  }
  std::printf("all modes bit-identical to the CPU reference; decode-free "
              "undercuts full-decode everywhere\n");
  return 0;
}
