// Paper Fig. 14 (Appendix D): effect of the residual segment length
// (8, 16, 32, 64, 128 bytes, inf = unsegmented) on BFS time and compression
// rate. Smaller segments = more decode parallelism on hub nodes (twitter)
// but more blank padding (lower compression rate).
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gcgt;
  std::printf("== Fig. 14: varying the residual segment length (bytes) ==\n\n");
  auto datasets = bench::BuildDatasets();
  std::vector<bench::SweepVariant> variants;
  for (int len : {8, 16, 32, 64, 128}) {
    CgrOptions o;
    o.segment_len_bytes = len;
    variants.push_back({std::to_string(len), o});
  }
  CgrOptions inf;
  inf.segment_len_bytes = 0;
  variants.push_back({"inf", inf});
  bench::JsonReport json(argc, argv);
  bench::RunCgrSweep(datasets, variants, &json);
  return 0;
}
