// Microbenchmark of the SIMT cost model's memory-accounting hot path: the
// throughput of MemAccess / MemAccessRange / MemAccessRanges / LineSet /
// DenseRegionFilter under the address streams the traversal engines actually
// produce (contiguous lane runs, strided one-line-per-lane gathers, scattered
// gathers, re-touched L1-warm streams). This is the layer every modeled
// transaction of every backend runs through (see README "Cost model"), so it
// gets its own trend line: `--json` emits one row per (pattern, line size)
// with wall_ns = measured time and model_cycles = the total mem_txns counted
// (deterministic, so the trend checker can also gate accounting semantics).
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/memory_layout.h"
#include "simt/warp.h"

namespace {

using gcgt::bench::Cell;
using gcgt::bench::JsonReport;
using gcgt::bench::NowNs;
using gcgt::simt::DenseRegionFilter;
using gcgt::simt::LineSet;
using gcgt::simt::WarpContext;

constexpr int kLanes = 32;
constexpr int kWarps = 20000;        // simulated warp epochs per pattern
constexpr int kAccessesPerWarp = 24; // warp-wide accesses between TakeStats

/// Deterministic 64-bit mix (SplitMix64); the bench must count the same
/// mem_txns on every run so the JSON row can gate accounting semantics.
uint64_t Mix(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct PatternResult {
  double wall_ns = 0;
  uint64_t mem_txns = 0;
  uint64_t accesses = 0;
};

/// Runs `fn(ctx, warp_index)` for kWarps warp epochs and totals mem_txns.
template <typename Fn>
PatternResult RunPattern(int line_bytes, Fn fn) {
  WarpContext ctx(kLanes, line_bytes);
  PatternResult r;
  const double t0 = NowNs();
  for (int w = 0; w < kWarps; ++w) {
    r.accesses += fn(ctx, w);
    r.mem_txns += ctx.TakeStats().mem_txns;
  }
  r.wall_ns = NowNs() - t0;
  return r;
}

void Report(JsonReport& json, const char* name, int line_bytes,
            const PatternResult& r) {
  const double ns_per_access = r.wall_ns / static_cast<double>(r.accesses);
  std::printf("%-28s line=%-3d %10.2f ns/lane-access %12llu txns\n", name,
              line_bytes, ns_per_access,
              static_cast<unsigned long long>(r.mem_txns));
  json.Add(std::string(name) + "/line" + std::to_string(line_bytes),
           r.wall_ns, static_cast<double>(r.mem_txns),
           {{"ns_per_access", Cell(ns_per_access, 0, 3)},
            {"lane_accesses", std::to_string(r.accesses)}});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcgt;
  JsonReport json(argc, argv);
  std::printf("== micro: SIMT memory-accounting throughput ==\n");
  std::printf("%d warps x %d warp-wide accesses x %d lanes per pattern\n\n",
              kWarps, kAccessesPerWarp, kLanes);

  std::vector<uint64_t> addrs(kLanes);
  std::vector<std::pair<uint64_t, uint64_t>> ranges(kLanes);

  for (int line_bytes : {32, 128}) {
    // Contiguous: all lanes read adjacent 4B words (coalesced frontier /
    // interval-expansion shape); advancing base => cold lines each access.
    auto contiguous = RunPattern(line_bytes, [&](WarpContext& ctx, int w) {
      uint64_t base = kQueueBase + uint64_t(w) * kAccessesPerWarp * 4 * kLanes;
      for (int a = 0; a < kAccessesPerWarp; ++a) {
        for (int l = 0; l < kLanes; ++l) addrs[l] = base + 4ull * l;
        ctx.MemAccess(addrs, 4);
        base += 4ull * kLanes;
      }
      return kLanes * kAccessesPerWarp;
    });
    Report(json, "mem_access/contiguous", line_bytes, contiguous);

    // Retouched: the same contiguous window every access — the L1-warm case
    // the one-entry filters and the recent-run cache must make nearly free.
    auto retouched = RunPattern(line_bytes, [&](WarpContext& ctx, int w) {
      const uint64_t base = kQueueBase + uint64_t(w % 7) * 64;
      for (int a = 0; a < kAccessesPerWarp; ++a) {
        for (int l = 0; l < kLanes; ++l) addrs[l] = base + 4ull * l;
        ctx.MemAccess(addrs, 4);
      }
      return kLanes * kAccessesPerWarp;
    });
    Report(json, "mem_access/retouched", line_bytes, retouched);

    // Strided: every lane its own line (worst-case coalescing), fresh lines
    // per access.
    auto strided = RunPattern(line_bytes, [&](WarpContext& ctx, int w) {
      uint64_t base = kLabelBase + uint64_t(w) * kAccessesPerWarp * kLanes *
                                       uint64_t(line_bytes);
      for (int a = 0; a < kAccessesPerWarp; ++a) {
        for (int l = 0; l < kLanes; ++l) {
          addrs[l] = base + uint64_t(l) * line_bytes;
        }
        ctx.MemAccess(addrs, 4);
        base += uint64_t(kLanes) * line_bytes;
      }
      return kLanes * kAccessesPerWarp;
    });
    Report(json, "mem_access/strided", line_bytes, strided);

    // Scattered: random 4B gathers over a 1 GiB window (label-gather shape,
    // exercising the LineSet's open-addressed fallback).
    auto scattered = RunPattern(line_bytes, [&](WarpContext& ctx, int w) {
      uint64_t seed = 0x1234 + uint64_t(w);
      for (int a = 0; a < kAccessesPerWarp; ++a) {
        for (int l = 0; l < kLanes; ++l) {
          addrs[l] = kLabelBase + (Mix(seed) & ((1ull << 30) - 1));
        }
        ctx.MemAccess(addrs, 4);
      }
      return kLanes * kAccessesPerWarp;
    });
    Report(json, "mem_access/scattered", line_bytes, scattered);

    // Variable byte ranges: VLC-decode shape — per-lane short ranges that
    // mostly re-touch the lane's previous line, occasionally straddling.
    auto vlranges = RunPattern(line_bytes, [&](WarpContext& ctx, int w) {
      uint64_t seed = 0x5678 + uint64_t(w);
      uint64_t cursor[kLanes];
      for (int l = 0; l < kLanes; ++l) {
        cursor[l] = kBitsBase + (Mix(seed) & ((1ull << 24) - 1));
      }
      for (int a = 0; a < kAccessesPerWarp; ++a) {
        for (int l = 0; l < kLanes; ++l) {
          const uint64_t len = 1 + (Mix(seed) & 7);
          ranges[l] = {cursor[l], cursor[l] + len - 1};
          cursor[l] += len;
        }
        ctx.MemAccessRanges(ranges);
      }
      return kLanes * kAccessesPerWarp;
    });
    Report(json, "mem_access_ranges/decode", line_bytes, vlranges);

    // Long contiguous ranges: queue-append shape through InsertRun's
    // interval fast path.
    auto runs = RunPattern(line_bytes, [&](WarpContext& ctx, int w) {
      uint64_t base = kQueueBase + uint64_t(w) * 1024;
      for (int a = 0; a < kAccessesPerWarp; ++a) {
        ctx.MemAccessRange(base, 4096);
        base += 512;
      }
      return kAccessesPerWarp;
    });
    Report(json, "mem_access_range/append", line_bytes, runs);
  }

  // LineSet primitives, outside WarpContext: scattered single inserts with
  // epoch Clear() boundaries, and run inserts through the interval path.
  {
    LineSet set;
    uint64_t seed = 42, txns = 0, ops = 0;
    const double t0 = NowNs();
    for (int w = 0; w < kWarps; ++w) {
      for (int i = 0; i < kLanes * 4; ++i) {
        txns += set.Insert(Mix(seed) & ((1ull << 22) - 1)) ? 1 : 0;
        ++ops;
      }
      set.Clear();
    }
    PatternResult r{NowNs() - t0, txns, ops};
    Report(json, "line_set/insert_scattered", 0, r);
  }
  {
    LineSet set;
    uint64_t txns = 0, ops = 0;
    const double t0 = NowNs();
    for (int w = 0; w < kWarps; ++w) {
      uint64_t first = uint64_t(w) * 11;
      for (int i = 0; i < kLanes * 4; ++i) {
        txns += set.InsertRun(first, 32);
        first += 16;  // half-overlapping runs: extend the same interval
        ++ops;
      }
      set.Clear();
    }
    PatternResult r{NowNs() - t0, txns, ops};
    Report(json, "line_set/insert_runs", 0, r);
  }
  {
    DenseRegionFilter filter;
    filter.Configure(32, 1u << 22);
    uint64_t seed = 7, txns = 0, ops = 0;
    const double t0 = NowNs();
    for (int w = 0; w < kWarps; ++w) {
      filter.NextWarp();
      for (int i = 0; i < kLanes * 4; ++i) {
        txns += filter.Touch(Mix(seed) & ((1u << 22) - 1));
        ++ops;
      }
    }
    PatternResult r{NowNs() - t0, txns, ops};
    Report(json, "dense_filter/touch", 0, r);
  }
  return 0;
}
